//! GAPBS-style optimized direct kernels (Beamer et al., 2015).
//!
//! The GAP benchmark suite is "a highly optimized parallel implementation
//! for graph processing on CPU" (paper §V-A); these kernels take the same
//! stance: index once into CSR/CSC, then run the textbook-optimal
//! algorithm with no streaming framework overhead — pull-mode PageRank
//! parallelized over disjoint vertex ranges, queue-based BFS, binary-heap
//! Dijkstra.

use std::time::Instant;

use gaasx_core::RunOutcome;
use gaasx_graph::{CooGraph, Csc, GraphError, VertexId};

use crate::cpu::{default_threads, HostPowerModel};
use crate::reference;

/// The GAPBS-style CPU engine.
#[derive(Debug, Clone)]
pub struct GapbsCpu {
    /// Worker threads for PageRank.
    pub threads: usize,
    /// Power model for energy conversion.
    pub power: HostPowerModel,
}

impl GapbsCpu {
    /// Engine with the machine's default parallelism.
    pub fn new() -> Self {
        GapbsCpu {
            threads: default_threads(),
            power: HostPowerModel::xeon_bronze(),
        }
    }

    /// Engine with an explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        GapbsCpu {
            threads,
            ..GapbsCpu::new()
        }
    }

    /// Pull-mode PageRank over CSC, parallel over vertex ranges.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an empty graph.
    pub fn pagerank(
        &self,
        graph: &CooGraph,
        damping: f64,
        iterations: u32,
    ) -> Result<RunOutcome<Vec<f64>>, GraphError> {
        let n = graph.num_vertices() as usize;
        if n == 0 {
            return Err(GraphError::InvalidParameter("empty graph".into()));
        }
        let csc = Csc::from_coo(graph);
        let deg = graph.out_degrees();
        let inv_deg: Vec<f64> = deg.iter().map(|&d| 1.0 / f64::from(d.max(1))).collect();
        let start = Instant::now();

        let mut ranks = vec![1.0f64; n];
        let mut next = vec![0.0f64; n];
        for _ in 0..iterations {
            // gaasx-lint: allow(thread-containment) -- CPU baseline measures real host parallelism as the software comparison point; it never touches engine state
            std::thread::scope(|scope| {
                let ranks = &ranks;
                let inv_deg = &inv_deg;
                let csc = &csc;
                let chunk = n.div_ceil(self.threads);
                for (t, out) in next.chunks_mut(chunk).enumerate() {
                    let lo = t * chunk;
                    scope.spawn(move || {
                        for (i, slot) in out.iter_mut().enumerate() {
                            let v = VertexId::new((lo + i) as u32);
                            let mut sum = 0.0;
                            for &u in csc.in_neighbor_slice(v) {
                                sum += ranks[u as usize] * inv_deg[u as usize];
                            }
                            *slot = (1.0 - damping) + damping * sum;
                        }
                    });
                }
            });
            std::mem::swap(&mut ranks, &mut next);
        }

        let elapsed = start.elapsed().as_nanos() as f64;
        let report = self.power.report(
            "cpu-gapbs",
            "pagerank",
            gaasx_sim::Nanos::from_ns(elapsed),
            iterations,
            graph.num_edges() as u64,
        );
        Ok(RunOutcome {
            result: ranks,
            report,
        })
    }

    /// Queue-based BFS over CSR.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an out-of-range source.
    pub fn bfs(
        &self,
        graph: &CooGraph,
        source: VertexId,
    ) -> Result<RunOutcome<Vec<f64>>, GraphError> {
        if source.raw() >= graph.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: source.raw(),
                num_vertices: graph.num_vertices(),
            });
        }
        let start = Instant::now();
        let (result, frontiers) = reference::bfs_with_frontiers(graph, source);
        let elapsed = start.elapsed().as_nanos() as f64;
        let report = self.power.report(
            "cpu-gapbs",
            "bfs",
            gaasx_sim::Nanos::from_ns(elapsed),
            frontiers.len() as u32,
            graph.num_edges() as u64,
        );
        Ok(RunOutcome { result, report })
    }

    /// Binary-heap Dijkstra over CSR.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an out-of-range source.
    pub fn sssp(
        &self,
        graph: &CooGraph,
        source: VertexId,
    ) -> Result<RunOutcome<Vec<f64>>, GraphError> {
        if source.raw() >= graph.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: source.raw(),
                num_vertices: graph.num_vertices(),
            });
        }
        let start = Instant::now();
        let result = reference::dijkstra(graph, source);
        let elapsed = start.elapsed().as_nanos() as f64;
        let report = self.power.report(
            "cpu-gapbs",
            "sssp",
            gaasx_sim::Nanos::from_ns(elapsed),
            1,
            graph.num_edges() as u64,
        );
        Ok(RunOutcome { result, report })
    }
}

impl Default for GapbsCpu {
    fn default() -> Self {
        GapbsCpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_graph::generators;

    #[test]
    fn pagerank_matches_oracle() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 8, 2000).with_seed(9)).unwrap();
        let out = GapbsCpu::with_threads(4).pagerank(&g, 0.85, 5).unwrap();
        let want = reference::pagerank(&g, 0.85, 5);
        for (a, b) in out.result.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn traversals_match_references() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 900).with_seed(10)).unwrap();
        let cpu = GapbsCpu::with_threads(2);
        let src = VertexId::new(0);
        assert_eq!(cpu.bfs(&g, src).unwrap().result, reference::bfs(&g, src));
        assert_eq!(
            cpu.sssp(&g, src).unwrap().result,
            reference::dijkstra(&g, src)
        );
    }

    #[test]
    fn gapbs_beats_gridgraph_on_traversal_work() {
        // Direct kernels do O(E) work; the streaming engine does
        // O(E × supersteps). On a path this gap is extreme; just confirm
        // both give the right answer and GAPBS reports fewer "iterations".
        let g = generators::path_graph(200);
        let gap = GapbsCpu::with_threads(1)
            .sssp(&g, VertexId::new(0))
            .unwrap();
        assert_eq!(gap.report.iterations, 1);
        assert_eq!(gap.result[199], 199.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::path_graph(3);
        let cpu = GapbsCpu::new();
        assert!(cpu.bfs(&g, VertexId::new(9)).is_err());
        assert!(cpu.sssp(&g, VertexId::new(9)).is_err());
        assert!(cpu.pagerank(&CooGraph::empty(0), 0.85, 1).is_err());
    }
}
