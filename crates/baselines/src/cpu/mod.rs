//! CPU software baselines: real, runnable, measured kernels.
//!
//! Three framework styles from the paper's Table III comparison:
//!
//! * [`GridGraphCpu`] — GridGraph-style 2-level grid streaming
//!   (edge-centric sweeps over interval-partitioned shards, multithreaded);
//! * [`GapbsCpu`] — GAPBS-style optimized direct kernels (pull PageRank,
//!   queue BFS, heap Dijkstra);
//! * [`GraphChiCpu`] — GraphChi-style shard-ordered collaborative
//!   filtering.
//!
//! Unlike the PIM engines these run for real and are measured by wall
//! clock; [`HostPowerModel`] converts measured time into energy the way the
//! paper converts RAPL readings (idle-subtracted dynamic power).

mod gapbs;
mod graphchi;
mod gridgraph;
mod power;

pub use gapbs::GapbsCpu;
pub use graphchi::GraphChiCpu;
pub use gridgraph::GridGraphCpu;
pub use power::HostPowerModel;

/// Default thread count for the parallel kernels.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}
