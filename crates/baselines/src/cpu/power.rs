//! Host power models converting measured wall-clock into energy.

use gaasx_sim::{Nanojoules, Nanos, RunReport};
use serde::{Deserialize, Serialize};

/// Dynamic (idle-subtracted) power draw of a host executing a graph kernel.
///
/// The paper measures CPU power with Intel RAPL and "subtract\[s\] out
/// measured system idle power before comparing against the power of our
/// accelerator design" (§V-A). A memory-bound graph kernel on the paper's
/// Xeon Bronze 3104 draws on the order of 10 W above idle; that constant —
/// together with the measured runtimes — reproduces the paper's
/// energy-ratio magnitudes (≈5400× vs. the 1.66 W accelerator at ≈800×
/// slowdown implies ≈11 W).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostPowerModel {
    /// Idle-subtracted active power, watts.
    pub dynamic_power_w: f64,
}

impl HostPowerModel {
    /// The Xeon-Bronze-class model described above.
    pub fn xeon_bronze() -> Self {
        HostPowerModel {
            dynamic_power_w: 11.0,
        }
    }

    /// Builds a report for a measured software run. All energy is recorded
    /// in the `static_nj` bucket (power × time); software engines have no
    /// crossbar component breakdown.
    pub fn report(
        &self,
        engine: &str,
        algorithm: &str,
        elapsed_ns: Nanos,
        iterations: u32,
        num_edges: u64,
    ) -> RunReport {
        let mut r = RunReport::new(engine, algorithm, "unlabeled");
        r.elapsed_ns = elapsed_ns;
        r.iterations = iterations;
        r.num_edges = num_edges;
        // W × ns = nJ.
        r.energy.static_nj = Nanojoules::from_nj(self.dynamic_power_w * elapsed_ns.ns());
        r
    }
}

impl Default for HostPowerModel {
    fn default() -> Self {
        HostPowerModel::xeon_bronze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let m = HostPowerModel {
            dynamic_power_w: 10.0,
        };
        let r = m.report("cpu", "pagerank", Nanos::from_ns(1e9), 5, 100);
        // 10 W for 1 s = 10 J = 1e10 nJ.
        assert!((r.energy.total_nj().nj() - 1e10).abs() < 1.0);
        assert_eq!(r.iterations, 5);
    }
}
