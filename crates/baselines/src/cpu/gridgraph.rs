//! GridGraph-style 2-level grid streaming kernels (Zhu et al., ATC 2015).
//!
//! The engine streams interval-partitioned shards in the grid order that
//! keeps the written vertex range small — column-major for pull-style
//! PageRank, row-major for push-style traversal — and parallelizes across
//! disjoint interval groups, mirroring GridGraph's selective-scheduling
//! sweeps. Runs are measured by wall clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use gaasx_core::RunOutcome;
use gaasx_graph::partition::GridPartition;
use gaasx_graph::{CooGraph, GraphError, VertexId};
use gaasx_sim::{attribute_makespan, Nanos, Phase, Tracer};

use crate::cpu::{default_threads, HostPowerModel};

/// The GridGraph-style CPU engine.
#[derive(Debug, Clone)]
pub struct GridGraphCpu {
    /// Worker threads.
    pub threads: usize,
    /// Power model for energy conversion.
    pub power: HostPowerModel,
    tracer: Tracer,
}

/// Wall-clock phase tally: spans here live on the measured time axis
/// (ns since run start), one per parallel sweep or apply step.
struct WallPhases<'a> {
    tracer: &'a Tracer,
    busy: [f64; 7],
    counts: [u64; 7],
}

impl<'a> WallPhases<'a> {
    fn new(tracer: &'a Tracer) -> Self {
        WallPhases {
            tracer,
            busy: [0.0; 7],
            counts: [0; 7],
        }
    }

    fn record(&mut self, phase: Phase, start_ns: f64, end_ns: f64) {
        let dur = (end_ns - start_ns).max(0.0);
        self.busy[phase.index()] += dur;
        self.counts[phase.index()] += 1;
        self.tracer.emit(phase, start_ns, dur);
    }

    fn attribute(&self, elapsed_ns: f64) -> Vec<gaasx_sim::PhaseBreakdown> {
        // Wall-clock tallies live as raw f64 until this single typed exit.
        let tallies: Vec<(Phase, Nanos, u64)> = Phase::ALL
            .iter()
            .filter(|&&p| p != Phase::Dispatch)
            .map(|&p| {
                (
                    p,
                    Nanos::from_ns(self.busy[p.index()]),
                    self.counts[p.index()],
                )
            })
            .collect();
        attribute_makespan(Nanos::from_ns(elapsed_ns), &tallies)
    }
}

impl GridGraphCpu {
    /// Engine with the machine's default parallelism.
    pub fn new() -> Self {
        GridGraphCpu {
            threads: default_threads(),
            power: HostPowerModel::xeon_bronze(),
            tracer: Tracer::null(),
        }
    }

    /// Engine with an explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        GridGraphCpu {
            threads,
            ..GridGraphCpu::new()
        }
    }

    /// Attaches a tracer; sweeps emit wall-clock phase spans through it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a tracer; sweeps emit wall-clock phase spans through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn grid(&self, graph: &CooGraph) -> Result<GridPartition, GraphError> {
        // GridGraph picks P so an interval's vertex state fits in cache;
        // 4 intervals per thread keeps the sweep balanced.
        let p = (self.threads * 4).max(4) as u32;
        GridPartition::with_num_intervals(graph, p)
    }

    /// PageRank by streaming destination-interval columns in parallel.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an empty graph.
    pub fn pagerank(
        &self,
        graph: &CooGraph,
        damping: f64,
        iterations: u32,
    ) -> Result<RunOutcome<Vec<f64>>, GraphError> {
        let grid = self.grid(graph)?;
        let n = graph.num_vertices() as usize;
        let deg = graph.out_degrees();
        let inv_deg: Vec<f64> = deg.iter().map(|&d| 1.0 / f64::from(d.max(1))).collect();
        let p = grid.num_intervals() as usize;
        let mut ranks = vec![1.0f64; n];
        let mut phases = WallPhases::new(&self.tracer);
        let start = Instant::now();

        for _ in 0..iterations {
            let mut acc = vec![0.0f64; n];
            let sweep_start = start.elapsed().as_nanos() as f64;
            // Hand each worker a disjoint set of destination intervals, so
            // its writable `acc` region is private.
            // gaasx-lint: allow(thread-containment) -- CPU baseline measures real host parallelism as the software comparison point; it never touches engine state
            std::thread::scope(|scope| {
                let ranks = &ranks;
                let inv_deg = &inv_deg;
                let grid = &grid;
                let mut rest: &mut [f64] = &mut acc;
                let mut offset = 0usize;
                let cols_per_thread = p.div_ceil(self.threads);
                for t in 0..self.threads {
                    let col_lo = t * cols_per_thread;
                    let col_hi = ((t + 1) * cols_per_thread).min(p);
                    if col_lo >= col_hi {
                        break;
                    }
                    let range_lo = grid.interval(col_lo as u32).start() as usize;
                    let range_hi = grid.interval((col_hi - 1) as u32).end() as usize;
                    let (mine, tail) = rest.split_at_mut(range_hi - offset);
                    rest = tail;
                    let my_offset = offset;
                    offset = range_hi;
                    debug_assert_eq!(my_offset, range_lo);
                    scope.spawn(move || {
                        for col in col_lo..col_hi {
                            for row in 0..p {
                                let Some(shard) = grid.shard(row as u32, col as u32) else {
                                    continue;
                                };
                                for e in shard.edges() {
                                    mine[e.dst.index() - my_offset] +=
                                        ranks[e.src.index()] * inv_deg[e.src.index()];
                                }
                            }
                        }
                    });
                }
            });
            let apply_start = start.elapsed().as_nanos() as f64;
            phases.record(Phase::MacGather, sweep_start, apply_start);
            for v in 0..n {
                ranks[v] = (1.0 - damping) + damping * acc[v];
            }
            phases.record(Phase::Sfu, apply_start, start.elapsed().as_nanos() as f64);
        }

        let elapsed = start.elapsed().as_nanos() as f64;
        let mut report = self.power.report(
            "cpu-gridgraph",
            "pagerank",
            Nanos::from_ns(elapsed),
            iterations,
            graph.num_edges() as u64,
        );
        report.phases = phases.attribute(elapsed);
        self.tracer.gauge_set("elapsed_ns", elapsed);
        self.tracer.flush();
        Ok(RunOutcome {
            result: ranks,
            report,
        })
    }

    /// SSSP by edge-streaming supersteps with atomic distance relaxation.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an empty graph or out-of-range source.
    pub fn sssp(
        &self,
        graph: &CooGraph,
        source: VertexId,
    ) -> Result<RunOutcome<Vec<f64>>, GraphError> {
        self.traversal(graph, source, false)
    }

    /// BFS: the SSSP sweep with unit weights.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an empty graph or out-of-range source.
    pub fn bfs(
        &self,
        graph: &CooGraph,
        source: VertexId,
    ) -> Result<RunOutcome<Vec<f64>>, GraphError> {
        self.traversal(graph, source, true)
    }

    fn traversal(
        &self,
        graph: &CooGraph,
        source: VertexId,
        unit_weights: bool,
    ) -> Result<RunOutcome<Vec<f64>>, GraphError> {
        if source.raw() >= graph.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: source.raw(),
                num_vertices: graph.num_vertices(),
            });
        }
        let grid = self.grid(graph)?;
        let n = graph.num_vertices() as usize;
        let p = grid.num_intervals() as usize;
        let start = Instant::now();

        let dist: Vec<AtomicU64> = (0..n)
            .map(|v| {
                AtomicU64::new(if v == source.index() {
                    0f64.to_bits()
                } else {
                    f64::INFINITY.to_bits()
                })
            })
            .collect();
        let mut supersteps = 0u32;
        let mut phases = WallPhases::new(&self.tracer);

        loop {
            let changed = AtomicBool::new(false);
            let sweep_start = start.elapsed().as_nanos() as f64;
            // gaasx-lint: allow(thread-containment) -- CPU baseline measures real host parallelism as the software comparison point; it never touches engine state
            std::thread::scope(|scope| {
                let dist = &dist;
                let grid = &grid;
                let changed = &changed;
                let rows_per_thread = p.div_ceil(self.threads);
                for t in 0..self.threads {
                    let row_lo = t * rows_per_thread;
                    let row_hi = ((t + 1) * rows_per_thread).min(p);
                    if row_lo >= row_hi {
                        break;
                    }
                    scope.spawn(move || {
                        for row in row_lo..row_hi {
                            for col in 0..p {
                                let Some(shard) = grid.shard(row as u32, col as u32) else {
                                    continue;
                                };
                                for e in shard.edges() {
                                    let dv =
                                        f64::from_bits(dist[e.src.index()].load(Ordering::Relaxed));
                                    if !dv.is_finite() {
                                        continue;
                                    }
                                    let w = if unit_weights {
                                        1.0
                                    } else {
                                        f64::from(e.weight)
                                    };
                                    let cand = dv + w;
                                    if atomic_min(&dist[e.dst.index()], cand) {
                                        changed.store(true, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    });
                }
            });
            phases.record(
                Phase::MacPropagate,
                sweep_start,
                start.elapsed().as_nanos() as f64,
            );
            supersteps += 1;
            if !changed.load(Ordering::Relaxed) || supersteps as usize >= n {
                break;
            }
        }

        let result: Vec<f64> = dist
            .iter()
            .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
            .collect();
        let elapsed = start.elapsed().as_nanos() as f64;
        let name = if unit_weights { "bfs" } else { "sssp" };
        let mut report = self.power.report(
            "cpu-gridgraph",
            name,
            Nanos::from_ns(elapsed),
            supersteps,
            graph.num_edges() as u64,
        );
        report.phases = phases.attribute(elapsed);
        self.tracer.gauge_set("elapsed_ns", elapsed);
        self.tracer.flush();
        Ok(RunOutcome { result, report })
    }
}

impl Default for GridGraphCpu {
    fn default() -> Self {
        GridGraphCpu::new()
    }
}

/// Atomic `min` on f64 bits; returns true if the value decreased.
/// Non-negative finite f64 values order identically to their bit patterns.
fn atomic_min(cell: &AtomicU64, candidate: f64) -> bool {
    let cand_bits = candidate.to_bits();
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) <= candidate {
            return false;
        }
        match cell.compare_exchange_weak(cur, cand_bits, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gaasx_graph::generators;

    #[test]
    fn pagerank_matches_oracle() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 8, 2000).with_seed(6)).unwrap();
        let cpu = GridGraphCpu::with_threads(4);
        let out = cpu.pagerank(&g, 0.85, 5).unwrap();
        let want = reference::pagerank(&g, 0.85, 5);
        for (a, b) in out.result.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 8, 2000).with_seed(7)).unwrap();
        let cpu = GridGraphCpu::with_threads(4);
        let out = cpu.sssp(&g, VertexId::new(0)).unwrap();
        assert_eq!(out.result, reference::dijkstra(&g, VertexId::new(0)));
    }

    #[test]
    fn bfs_matches_reference() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 900).with_seed(8)).unwrap();
        let cpu = GridGraphCpu::with_threads(3);
        let out = cpu.bfs(&g, VertexId::new(2)).unwrap();
        assert_eq!(out.result, reference::bfs(&g, VertexId::new(2)));
    }

    #[test]
    fn single_thread_works() {
        let g = generators::path_graph(20);
        let cpu = GridGraphCpu::with_threads(1);
        let out = cpu.sssp(&g, VertexId::new(0)).unwrap();
        assert_eq!(out.result[19], 19.0);
    }

    #[test]
    fn report_measures_time_and_energy() {
        let g = generators::paper_fig7_graph();
        let cpu = GridGraphCpu::with_threads(2);
        let out = cpu.pagerank(&g, 0.85, 3).unwrap();
        assert!(out.report.elapsed_ns.ns() > 0.0);
        assert!(out.report.energy.total_nj().nj() > 0.0);
        assert_eq!(out.report.engine, "cpu-gridgraph");
    }

    #[test]
    fn phases_cover_the_wall_clock() {
        use gaasx_sim::{AggregateSink, Tracer};
        use std::sync::Arc;

        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 900).with_seed(3)).unwrap();
        let sink = Arc::new(AggregateSink::new());
        let cpu = GridGraphCpu::with_threads(2).with_tracer(Tracer::with_sink(sink.clone()));
        let out = cpu.pagerank(&g, 0.85, 4).unwrap();
        let r = &out.report;
        assert!(!r.phases.is_empty());
        assert_eq!(r.phases_total_sched_ns(), r.elapsed_ns);
        let gather = r.phase(Phase::MacGather).unwrap();
        assert_eq!(gather.count, 4);
        let sfu = r.phase(Phase::Sfu).unwrap();
        assert_eq!(sfu.count, 4);
        // Spans reach the sink with the same busy totals.
        let rollup = sink.phase_rollup();
        let sunk = rollup.iter().find(|b| b.phase == Phase::MacGather).unwrap();
        assert_eq!(sunk.busy_ns, gather.busy_ns);

        let sssp = cpu.sssp(&g, VertexId::new(0)).unwrap();
        let prop = sssp.report.phase(Phase::MacPropagate).unwrap();
        assert_eq!(u64::from(sssp.report.iterations), prop.count);
        assert_eq!(sssp.report.phases_total_sched_ns(), sssp.report.elapsed_ns);
    }

    #[test]
    fn atomic_min_behaves() {
        let cell = AtomicU64::new(f64::INFINITY.to_bits());
        assert!(atomic_min(&cell, 5.0));
        assert!(!atomic_min(&cell, 7.0));
        assert!(atomic_min(&cell, 2.0));
        assert_eq!(f64::from_bits(cell.load(Ordering::Relaxed)), 2.0);
    }

    #[test]
    fn rejects_bad_source() {
        let g = generators::path_graph(3);
        assert!(GridGraphCpu::new().sssp(&g, VertexId::new(5)).is_err());
    }
}
