//! GraphChi-style collaborative filtering (Kyrola et al., OSDI 2012).
//!
//! GraphChi processes edges in shard order from disk with vertex data
//! updated in place; its CF toolkit runs SGD matrix factorization over the
//! rating edges in that order. This kernel reproduces the computation —
//! shard-ordered SGD with in-place feature updates — measured by wall
//! clock.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gaasx_core::algorithms::CfModel;
use gaasx_core::RunOutcome;
use gaasx_graph::bipartite::BipartiteGraph;
use gaasx_graph::GraphError;

use crate::cpu::HostPowerModel;

/// The GraphChi-style CF trainer.
#[derive(Debug, Clone)]
pub struct GraphChiCpu {
    /// Power model for energy conversion.
    pub power: HostPowerModel,
}

impl GraphChiCpu {
    /// A trainer with the default power model.
    pub fn new() -> Self {
        GraphChiCpu {
            power: HostPowerModel::xeon_bronze(),
        }
    }

    /// Trains a matrix-factorization model by shard-ordered SGD.
    ///
    /// # Errors
    ///
    /// Returns a graph error for zero features or a non-positive learning
    /// rate.
    pub fn cf(
        &self,
        ratings: &BipartiteGraph,
        features: usize,
        epochs: u32,
        learning_rate: f64,
        regularization: f64,
        seed: u64,
    ) -> Result<RunOutcome<CfModel>, GraphError> {
        if features == 0 {
            return Err(GraphError::InvalidParameter(
                "features must be positive".into(),
            ));
        }
        if !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(GraphError::InvalidParameter(
                "learning_rate must be positive".into(),
            ));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let scale = 0.5 / (features as f32).sqrt();
        let mut init = |n: u32| -> Vec<Vec<f32>> {
            (0..n)
                .map(|_| (0..features).map(|_| rng.gen_range(0.0..scale)).collect())
                .collect()
        };
        let mut user_f = init(ratings.num_users());
        let mut item_f = init(ratings.num_items());

        // Shard order: GraphChi sorts edges by destination interval; for a
        // bipartite rating set this is item-major order.
        let mut order: Vec<usize> = (0..ratings.num_ratings()).collect();
        let rs = ratings.ratings();
        order.sort_by_key(|&i| (rs[i].item, rs[i].user));

        let start = Instant::now();
        for _ in 0..epochs {
            for &idx in &order {
                let r = rs[idx];
                let u = r.user as usize;
                let i = r.item as usize;
                let pred: f64 = user_f[u]
                    .iter()
                    .zip(&item_f[i])
                    .map(|(&a, &b)| f64::from(a) * f64::from(b))
                    .sum();
                let err = f64::from(r.value) - pred;
                for k in 0..features {
                    let pu = f64::from(user_f[u][k]);
                    let pi = f64::from(item_f[i][k]);
                    user_f[u][k] = (pu + learning_rate * (err * pi - regularization * pu)) as f32;
                    item_f[i][k] = (pi + learning_rate * (err * pu - regularization * pi)) as f32;
                }
            }
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        let report = self.power.report(
            "cpu-graphchi",
            "cf",
            gaasx_sim::Nanos::from_ns(elapsed),
            epochs,
            ratings.num_ratings() as u64,
        );
        Ok(RunOutcome {
            result: CfModel::from_parts(user_f, item_f),
            report,
        })
    }
}

impl Default for GraphChiCpu {
    fn default() -> Self {
        GraphChiCpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_reduces_rmse() {
        let ratings = BipartiteGraph::synthetic(40, 15, 400, 21).unwrap();
        let chi = GraphChiCpu::new();
        let before = chi
            .cf(&ratings, 8, 0, 0.02, 0.02, 7)
            .unwrap()
            .result
            .rmse(&ratings)
            .unwrap();
        let after = chi
            .cf(&ratings, 8, 10, 0.02, 0.02, 7)
            .unwrap()
            .result
            .rmse(&ratings)
            .unwrap();
        assert!(after < before * 0.8, "rmse {before} -> {after}");
    }

    #[test]
    fn deterministic_for_seed() {
        let ratings = BipartiteGraph::synthetic(10, 5, 50, 2).unwrap();
        let chi = GraphChiCpu::new();
        let a = chi.cf(&ratings, 4, 3, 0.02, 0.02, 9).unwrap().result;
        let b = chi.cf(&ratings, 4, 3, 0.02, 0.02, 9).unwrap().result;
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let ratings = BipartiteGraph::synthetic(4, 4, 8, 1).unwrap();
        let chi = GraphChiCpu::new();
        assert!(chi.cf(&ratings, 0, 1, 0.02, 0.02, 1).is_err());
        assert!(chi.cf(&ratings, 4, 1, 0.0, 0.02, 1).is_err());
    }
}
