//! GRAM: the digital-PIM baseline (Zhou et al., ASP-DAC 2019), modeled
//! through its published ratios relative to GraphR.
//!
//! GRAM computes with digital in-memory primitives (compare-and-swap,
//! parallel reduction) on crossbar arrays — a radically different
//! microarchitecture. The GaaS-X paper therefore does not re-simulate it:
//! "Since GRAM uses a radically different architecture than the one we
//! model in detail, we only compare with GRAM in terms of the previously
//! reported end-to-end relative performance and energy improvements with
//! respect to GraphR" (§V-A). We do exactly the same: a [`GramModel`]
//! rescales a GraphR [`RunReport`] by the published per-algorithm ratios.

use gaasx_sim::RunReport;
use serde::{Deserialize, Serialize};

/// Published GRAM-vs-GraphR improvement ratios for one algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GramModel {
    /// End-to-end speedup of GRAM over GraphR.
    pub perf_vs_graphr: f64,
    /// End-to-end energy improvement of GRAM over GraphR.
    pub energy_vs_graphr: f64,
}

impl GramModel {
    /// Ratios for an algorithm, from the GRAM paper's AZ/WV/LJ evaluation
    /// as cited by GaaS-X. The digital compare-and-swap pipeline favours
    /// traversal algorithms slightly over PageRank.
    ///
    /// Returns `None` for algorithms GRAM was not evaluated on (the
    /// GaaS-X paper itself could not compare CF: "the latter was not
    /// evaluated on this algorithm") so callers skip the comparison
    /// instead of aborting a whole figure run.
    pub fn for_algorithm(algorithm: &str) -> Option<Self> {
        match algorithm {
            "pagerank" => Some(GramModel {
                perf_vs_graphr: 2.8,
                energy_vs_graphr: 4.0,
            }),
            "bfs" => Some(GramModel {
                perf_vs_graphr: 3.3,
                energy_vs_graphr: 4.4,
            }),
            "sssp" => Some(GramModel {
                perf_vs_graphr: 3.2,
                energy_vs_graphr: 4.3,
            }),
            _ => None,
        }
    }

    /// Derives a GRAM report from a GraphR report of the same run.
    pub fn report_from_graphr(&self, graphr: &RunReport) -> RunReport {
        let mut report = graphr.clone();
        report.engine = "gram".into();
        report.elapsed_ns /= self.perf_vs_graphr;
        let scale = 1.0 / self.energy_vs_graphr;
        report.energy.mac_nj *= scale;
        report.energy.cam_nj *= scale;
        report.energy.write_nj *= scale;
        report.energy.sfu_nj *= scale;
        report.energy.buffer_nj *= scale;
        report.energy.static_nj *= scale;
        // Operation counts are GraphR's; GRAM's digital op mix is not
        // directly comparable, so we clear the crossbar-specific fields.
        report.ops.mac_ops = 0;
        report.ops.cam_searches = 0;
        report.rows_per_mac = gaasx_sim::Histogram::new(1);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_sim::{Nanojoules, Nanos};

    fn graphr_report() -> RunReport {
        let mut r = RunReport::new("graphr", "pagerank", "AZ");
        r.elapsed_ns = Nanos::from_ns(2.8e6);
        r.energy.mac_nj = Nanojoules::from_nj(4.0e6);
        r.iterations = 10;
        r.num_edges = 1000;
        r
    }

    #[test]
    fn rescales_time_and_energy() {
        let g = graphr_report();
        let m = GramModel::for_algorithm("pagerank").expect("published");
        let gram = m.report_from_graphr(&g);
        assert_eq!(gram.engine, "gram");
        assert!((gram.elapsed_ns.ns() - 1e6).abs() < 1.0);
        assert!((gram.energy.total_nj().nj() - 1e6).abs() < 1.0);
        // Workload metadata is preserved.
        assert_eq!(gram.workload, "AZ");
        assert_eq!(gram.iterations, 10);
    }

    #[test]
    fn traversal_ratios_exceed_pagerank() {
        let pr = GramModel::for_algorithm("pagerank").expect("published");
        let bfs = GramModel::for_algorithm("bfs").expect("published");
        assert!(bfs.perf_vs_graphr > pr.perf_vs_graphr);
    }

    #[test]
    fn cf_is_unsupported() {
        assert!(GramModel::for_algorithm("cf").is_none());
    }
}
