//! Comparison baselines for the GaaS-X reproduction.
//!
//! The paper (§V-A, Table III) compares GaaS-X against four classes of
//! systems, all of which this crate provides:
//!
//! * [`graphr`] — the GraphR dense-mapping crossbar PIM accelerator,
//!   simulated on the *same* device substrate and with the same number of
//!   parallel compute elements as GaaS-X, exactly as the paper does;
//! * [`gram`] — the GRAM digital-PIM accelerator, modeled through its
//!   published performance/energy ratios relative to GraphR (again
//!   following the paper, which "only compare\[s\] with GRAM in terms of the
//!   previously reported end-to-end relative performance");
//! * [`cpu`] — real, runnable software kernels in the style of GridGraph
//!   (grid streaming), GAPBS (optimized direct kernels) and GraphChi (CF),
//!   measured by wall clock and converted to energy with a dynamic-power
//!   model;
//! * [`gpu`] — an analytical Gunrock/cuMF roofline model of a Titan-V-class
//!   part (we have no GPU in this environment; see DESIGN.md §5).
//!
//! The [`mod@reference`] module holds the exact oracles every engine validates against,
//! and [`redundancy`] reproduces the paper's Fig 5 dense-vs-sparse
//! write/compute analysis.

#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod gpu;
pub mod gram;
pub mod graphr;
pub mod redundancy;
pub mod reference;
pub mod tesseract;

pub use graphr::{GraphR, GraphRConfig};
