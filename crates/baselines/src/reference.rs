//! Exact oracle implementations used to validate every engine.
//!
//! These are straightforward, allocation-honest `f64` implementations with
//! no hardware modeling; every simulated engine (GaaS-X, GraphR, the CPU
//! kernels) must agree with them within its numeric tolerance.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use gaasx_graph::{CooGraph, Csr, VertexId};

/// PageRank by the paper's Equation 3:
/// `rank(V) = (1 − α) + α Σ rank(U)/OutDeg(U)`, run for exactly `iters`
/// iterations from all-ones.
pub fn pagerank(graph: &CooGraph, damping: f64, iters: u32) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    let deg = graph.out_degrees();
    let mut ranks = vec![1.0f64; n];
    for _ in 0..iters {
        let mut acc = vec![0.0f64; n];
        for e in graph.iter() {
            acc[e.dst.index()] += ranks[e.src.index()] / f64::from(deg[e.src.index()].max(1));
        }
        for v in 0..n {
            ranks[v] = (1.0 - damping) + damping * acc[v];
        }
    }
    ranks
}

/// Dijkstra shortest paths from `source` (non-negative weights).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn dijkstra(graph: &CooGraph, source: VertexId) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    assert!(source.index() < n, "source out of range");
    let csr = Csr::from_coo(graph);
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    // Weights in this workspace are small non-negative f32s; ordering via a
    // scaled-integer key keeps the heap total-ordered.
    let key = |d: f64| (d * 1024.0).round() as u64;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, source.raw())));
    while let Some(Reverse((k, v))) = heap.pop() {
        if k > key(dist[v as usize]) {
            continue;
        }
        let dv = dist[v as usize];
        for (u, w) in csr.neighbors(VertexId::new(v)) {
            let nd = dv + f64::from(w);
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(Reverse((key(nd), u.raw())));
            }
        }
    }
    dist
}

/// BFS hop counts from `source`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs(graph: &CooGraph, source: VertexId) -> Vec<f64> {
    bfs_with_frontiers(graph, source).0
}

/// BFS hop counts plus, per level, the number of edges examined from that
/// level's frontier — the quantity frontier-centric engines (Gunrock, the
/// GaaS-X BFS mapping) spend their work on.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_with_frontiers(graph: &CooGraph, source: VertexId) -> (Vec<f64>, Vec<u64>) {
    let n = graph.num_vertices() as usize;
    assert!(source.index() < n, "source out of range");
    let csr = Csr::from_coo(graph);
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    let mut frontier = vec![source.raw()];
    let mut frontier_edges = Vec::new();
    let mut next = Vec::new();
    let mut level = 0.0f64;
    while !frontier.is_empty() {
        let mut examined = 0u64;
        for &v in &frontier {
            examined += csr.degree(VertexId::new(v)) as u64;
            for (u, _) in csr.neighbors(VertexId::new(v)) {
                if dist[u.index()].is_infinite() {
                    dist[u.index()] = level + 1.0;
                    next.push(u.raw());
                }
            }
        }
        frontier_edges.push(examined);
        frontier = std::mem::take(&mut next);
        level += 1.0;
    }
    (dist, frontier_edges)
}

/// Bellman–Ford SSSP plus, per superstep, the number of edges relaxed from
/// then-active vertices — the work profile of superstep-synchronous engines.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn sssp_with_rounds(graph: &CooGraph, source: VertexId) -> (Vec<f64>, Vec<u64>) {
    let n = graph.num_vertices() as usize;
    assert!(source.index() < n, "source out of range");
    let csr = Csr::from_coo(graph);
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    let mut active = vec![source.raw()];
    let mut round_edges = Vec::new();
    while !active.is_empty() {
        let mut relaxed = 0u64;
        let mut next: Vec<u32> = Vec::new();
        let mut queued = vec![false; n];
        for &v in &active {
            let dv = dist[v as usize];
            relaxed += csr.degree(VertexId::new(v)) as u64;
            for (u, w) in csr.neighbors(VertexId::new(v)) {
                let nd = dv + f64::from(w);
                if nd < dist[u.index()] {
                    dist[u.index()] = nd;
                    if !queued[u.index()] {
                        queued[u.index()] = true;
                        next.push(u.raw());
                    }
                }
            }
        }
        round_edges.push(relaxed);
        active = next;
        if round_edges.len() > n {
            break; // negative-cycle guard; unreachable with validated inputs
        }
    }
    (dist, round_edges)
}

/// Connected-component style reachability count from `source` (how many
/// vertices BFS reaches, including the source).
pub fn reachable_count(graph: &CooGraph, source: VertexId) -> usize {
    bfs(graph, source).iter().filter(|d| d.is_finite()).count()
}

/// BFS using an explicit queue; kept separate from
/// [`bfs_with_frontiers`] as an independent cross-check in tests.
pub fn bfs_queue(graph: &CooGraph, source: VertexId) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    assert!(source.index() < n, "source out of range");
    let csr = Csr::from_coo(graph);
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    let mut q = VecDeque::from([source.raw()]);
    while let Some(v) = q.pop_front() {
        for (u, _) in csr.neighbors(VertexId::new(v)) {
            if dist[u.index()].is_infinite() {
                dist[u.index()] = dist[v as usize] + 1.0;
                q.push_back(u.raw());
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_graph::generators;

    #[test]
    fn pagerank_on_cycle_is_uniform() {
        let g = generators::cycle_graph(5);
        for r in pagerank(&g, 0.85, 30) {
            assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_mass_is_conserved_without_danglers() {
        let g = generators::cycle_graph(64);
        let sum: f64 = pagerank(&g, 0.85, 10).iter().sum();
        assert!((sum - 64.0).abs() < 1e-6);
    }

    #[test]
    fn dijkstra_and_bellman_agree() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 800).with_seed(21)).unwrap();
        let src = VertexId::new(0);
        let d = dijkstra(&g, src);
        let (b, _) = sssp_with_rounds(&g, src);
        assert_eq!(d, b);
    }

    #[test]
    fn two_bfs_implementations_agree() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 800).with_seed(22)).unwrap();
        let src = VertexId::new(3);
        assert_eq!(bfs(&g, src), bfs_queue(&g, src));
    }

    #[test]
    fn frontier_edges_sum_to_reachable_out_degrees() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(5)).unwrap();
        let src = VertexId::new(0);
        let (dist, frontiers) = bfs_with_frontiers(&g, src);
        let deg = g.out_degrees();
        let expected: u64 = dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(v, _)| u64::from(deg[v]))
            .sum();
        assert_eq!(frontiers.iter().sum::<u64>(), expected);
    }

    #[test]
    fn reachability_on_path() {
        let g = generators::path_graph(7);
        assert_eq!(reachable_count(&g, VertexId::new(0)), 7);
        assert_eq!(reachable_count(&g, VertexId::new(5)), 2);
    }

    #[test]
    fn sssp_rounds_track_path_depth() {
        let g = generators::path_graph(6);
        let (_, rounds) = sssp_with_rounds(&g, VertexId::new(0));
        // One active vertex per round along the path.
        assert_eq!(rounds.len(), 6);
    }
}
