//! GraphR: the dense-mapping ReRAM crossbar baseline (Song et al.,
//! HPCA 2018), simulated as the GaaS-X paper does (§V-A): "We simulate the
//! micro architectural characteristics of GraphR (e.g. dense mapping to
//! crossbars) using our custom cycle-accurate simulator with the same
//! technology parameters ... We also keep same number of parallel compute
//! elements (2048) in both GaaS-X and GraphR."
//!
//! The behavioural differences from GaaS-X, per §II-C:
//!
//! * every non-empty `T×T` adjacency tile is converted sparse→dense and all
//!   `T²` values are *written* to a compute crossbar (the write redundancy
//!   of Fig 5);
//! * PageRank processes an entire tile per MAC operation — maximum
//!   parallelism, but every zero cell computes too (compute redundancy);
//! * BFS/SSSP "can process only one row at a time in the graph tile,
//!   leading to lower parallelism", and the engine re-streams every tile
//!   each superstep because it has no CAM to find active sources.

mod engine;

pub use engine::{GraphR, GraphRConfig};
