//! The GraphR simulator: dense tile mapping with GaaS-X's device substrate.

use gaasx_core::algorithms::CfModel;
use gaasx_core::RunOutcome;
use gaasx_graph::bipartite::BipartiteGraph;
use gaasx_graph::partition::{GridPartition, TraversalOrder};
use gaasx_graph::CooGraph;
use gaasx_sim::pipeline::PipelineClock;
use gaasx_sim::{
    attribute_makespan, EnergyBreakdown, Histogram, Nanojoules, Nanos, OpSummary, Phase, RunReport,
    SramBuffer, Tracer,
};
use gaasx_xbar::energy::DeviceEnergyModel;

/// Configuration of the GraphR baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphRConfig {
    /// Dense tile side length (the paper's Fig 5 uses 16×16).
    pub tile_size: u32,
    /// Parallel compute elements — kept at 2048 for parity with GaaS-X.
    pub num_pe: usize,
    /// Device energy/latency model (same substrate as GaaS-X).
    pub energy: DeviceEnergyModel,
    /// Bit slices per stored value (same 16-bit weights as GaaS-X).
    pub slices: u64,
    /// Bandwidth streaming COO data from the memory ReRAMs, GB/s.
    pub stream_bandwidth_gbps: f64,
    /// Bytes per streamed COO edge record.
    pub edge_record_bytes: u64,
}

impl GraphRConfig {
    /// The configuration used throughout the paper's comparison.
    pub fn paper() -> Self {
        GraphRConfig {
            tile_size: 16,
            num_pe: 2048,
            energy: DeviceEnergyModel::paper(),
            slices: 8,
            stream_bandwidth_gbps: 128.0,
            edge_record_bytes: 12,
        }
    }

    /// A small configuration for fast tests (8 PEs).
    pub fn small() -> Self {
        GraphRConfig {
            num_pe: 8,
            ..GraphRConfig::paper()
        }
    }
}

impl Default for GraphRConfig {
    fn default() -> Self {
        GraphRConfig::paper()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TileCost {
    stream_bytes: u64,
    program_ns: Nanos,
    compute_ns: Nanos,
}

/// Cost tally shared by all GraphR algorithm runs.
#[derive(Debug)]
struct Tally {
    config: GraphRConfig,
    costs: Vec<TileCost>,
    current: TileCost,
    in_tile: bool,
    mac_ops: u64,
    rows_per_mac: Histogram,
    cells_written: u64,
    row_writes: u64,
    sfu_ops: u64,
    compute_items: u64,
    extra_parallel_ns: Nanos,
    input_buf: SramBuffer,
    attr_buf: SramBuffer,
    output_buf: SramBuffer,
    tracer: Tracer,
    /// Functional (serial) time cursor for span placement.
    cursor_ns: Nanos,
    phase_busy: [Nanos; 7],
    phase_counts: [u64; 7],
}

impl Tally {
    fn new(config: GraphRConfig, tracer: Tracer) -> Self {
        Tally {
            rows_per_mac: Histogram::new(config.tile_size as usize),
            config,
            costs: Vec::new(),
            current: TileCost::default(),
            in_tile: false,
            mac_ops: 0,
            cells_written: 0,
            row_writes: 0,
            sfu_ops: 0,
            compute_items: 0,
            extra_parallel_ns: Nanos::ZERO,
            input_buf: SramBuffer::input_16kb(),
            attr_buf: SramBuffer::attribute_512kb(),
            output_buf: SramBuffer::output_64kb(),
            tracer,
            cursor_ns: Nanos::ZERO,
            phase_busy: [Nanos::ZERO; 7],
            phase_counts: [0; 7],
        }
    }

    /// Tallies one operation's busy time and emits its span on the
    /// functional (serial) time axis.
    fn trace_op(&mut self, phase: Phase, dur_ns: Nanos, count: u64) {
        self.phase_busy[phase.index()] += dur_ns;
        self.phase_counts[phase.index()] += count;
        let start = self.cursor_ns;
        self.cursor_ns += dur_ns;
        // The span/telemetry boundary is untyped; `.ns()` marks the exit
        // from the typed accounting.
        self.tracer.emit(phase, start.ns(), dur_ns.ns());
    }

    /// Sparse→dense conversion and programming of one tile holding `nnz`
    /// edges: the full `T²` dense image is written.
    fn load_tile(&mut self, nnz: usize) {
        self.end_tile();
        self.in_tile = true;
        let t = u64::from(self.config.tile_size);
        let bytes = nnz as u64 * self.config.edge_record_bytes;
        self.input_buf.write(bytes);
        self.current.stream_bytes = bytes;
        // Every dense row programs all T values (zeros included): the
        // timing face of the Fig 5 write redundancy.
        self.current.program_ns = self.config.tile_size as f64
            * self
                .config
                .energy
                .row_program_ns(self.config.tile_size as usize);
        self.row_writes += t;
        self.cells_written += t * t * self.config.slices;
        let stream_ns = Nanos::from_ns(bytes as f64 / self.config.stream_bandwidth_gbps);
        self.trace_op(Phase::LoadBlock, stream_ns + self.current.program_ns, 1);
    }

    /// One MAC burst activating `rows` tile rows; every activated row
    /// computes all `T` of its cells, zeros included.
    fn mac(&mut self, rows: usize) {
        debug_assert!(self.in_tile, "mac outside a loaded tile");
        self.mac_ops += 1;
        self.rows_per_mac.record(rows.max(1));
        let ns = self.config.energy.mac_op_ns;
        self.current.compute_ns += ns;
        self.trace_op(Phase::MacGather, ns, 1);
        self.compute_items += rows as u64 * u64::from(self.config.tile_size);
    }

    fn sfu(&mut self, ops: u64) {
        // GraphR's sALUs are as parallel as GaaS-X's SFU lanes.
        let ns = ops as f64 * self.config.energy.sfu_op_ns / 16.0;
        if self.in_tile {
            self.current.compute_ns += ns;
        }
        self.sfu_ops += ops;
        self.trace_op(Phase::Sfu, ns, ops);
    }

    /// Charges loading `rows` attribute rows of `values` logical values
    /// each into the *current tile's* PE. GraphR's tile-at-a-time dataflow
    /// co-locates the feature vectors with the PE processing the tile, so
    /// every tile re-loads its occupied lines' vectors — the CF face of the
    /// dense-mapping write redundancy.
    fn load_tile_features(&mut self, rows: u64, values: usize) {
        debug_assert!(self.in_tile, "feature load outside a tile");
        self.row_writes += rows;
        self.cells_written += rows * values as u64 * self.config.slices;
        let ns = rows as f64 * self.config.energy.row_program_ns(values);
        self.current.program_ns += ns;
        self.trace_op(Phase::LoadBlock, ns, 1);
    }

    fn end_tile(&mut self) {
        if self.in_tile {
            self.costs.push(self.current);
            self.current = TileCost::default();
            self.in_tile = false;
        }
    }

    fn finish(mut self, algorithm: &str, iterations: u32, num_edges: u64) -> RunReport {
        self.end_tile();
        let pes = self.config.num_pe.max(1);
        let mut clock = PipelineClock::new();
        for (w, wave) in self.costs.chunks(pes).enumerate() {
            let stream_ns: Nanos = wave
                .iter()
                .map(|t| Nanos::from_ns(t.stream_bytes as f64 / self.config.stream_bandwidth_gbps))
                .sum();
            let program_ns = wave
                .iter()
                .map(|t| t.program_ns)
                .fold(Nanos::ZERO, Nanos::max);
            let compute_ns = wave
                .iter()
                .map(|t| t.compute_ns)
                .fold(Nanos::ZERO, Nanos::max);
            // The pipeline clock is an untyped scheduling core; `.ns()`
            // marks the exit from the typed accounting.
            let done = clock.advance(stream_ns.max(program_ns).ns(), compute_ns.ns());
            if self.tracer.enabled() {
                // One dispatch event per tile; PE = position in the wave.
                let compute_start = done - compute_ns.ns();
                for (i, t) in wave.iter().enumerate() {
                    self.tracer
                        .span(
                            Phase::Dispatch,
                            (compute_start - t.program_ns.ns()).max(0.0),
                        )
                        .bank(i as u32)
                        .attr("tile", w * pes + i)
                        .attr("wave", w)
                        .end(compute_start + t.compute_ns.ns());
                }
            }
        }
        let makespan = Nanos::from_ns(clock.makespan()) + self.extra_parallel_ns;
        let e = &self.config.energy;
        let buffer_nj =
            self.input_buf.energy_nj() + self.attr_buf.energy_nj() + self.output_buf.energy_nj();
        let energy = EnergyBreakdown {
            mac_nj: (self.mac_ops as f64 * e.mac_op_pj).to_nanojoules(),
            cam_nj: Nanojoules::ZERO,
            write_nj: (self.cells_written as f64 * e.cell_write_pj).to_nanojoules(),
            sfu_nj: (self.sfu_ops as f64 * e.sfu_op_pj).to_nanojoules(),
            buffer_nj,
            static_nj: e.static_energy_nj(makespan),
        };
        let ops = OpSummary {
            mac_ops: self.mac_ops,
            cam_searches: 0,
            cells_written: self.cells_written,
            row_writes: self.row_writes,
            verify_reads: 0,
            sfu_ops: self.sfu_ops,
            buffer_accesses: self.input_buf.accesses()
                + self.attr_buf.accesses()
                + self.output_buf.accesses(),
            compute_items: self.compute_items,
        };
        let tallies: Vec<(Phase, Nanos, u64)> = Phase::ALL
            .iter()
            .filter(|&&p| p != Phase::Dispatch)
            .map(|&p| (p, self.phase_busy[p.index()], self.phase_counts[p.index()]))
            .collect();
        let phases = attribute_makespan(makespan, &tallies);
        if let Some(metrics) = self.tracer.metrics() {
            metrics.publish_op_summary(&ops);
        }
        self.tracer.gauge_set("elapsed_ns", makespan.ns());
        self.tracer
            .gauge_set("energy_total_nj", energy.total_nj().nj());
        self.tracer.flush();

        let mut report = RunReport::new("graphr", algorithm, "unlabeled");
        report.iterations = iterations;
        report.elapsed_ns = makespan;
        report.energy = energy;
        report.ops = ops;
        report.rows_per_mac = self.rows_per_mac;
        report.num_edges = num_edges;
        report.phases = phases;
        report
    }
}

/// The GraphR baseline accelerator.
#[derive(Debug, Clone)]
pub struct GraphR {
    config: GraphRConfig,
    tracer: Tracer,
}

impl GraphR {
    /// Creates a GraphR instance.
    pub fn new(config: GraphRConfig) -> Self {
        GraphR {
            config,
            tracer: Tracer::null(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GraphRConfig {
        &self.config
    }

    /// Attaches a tracer that every subsequent run inherits (builder form).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a tracer that every subsequent run inherits.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// PageRank: one full-tile MVM per non-empty tile per iteration.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an empty graph.
    pub fn pagerank(
        &mut self,
        graph: &CooGraph,
        damping: f64,
        iterations: u32,
    ) -> Result<RunOutcome<Vec<f64>>, gaasx_graph::GraphError> {
        let grid = GridPartition::new(graph, self.config.tile_size)?;
        let n = graph.num_vertices() as usize;
        let deg = graph.out_degrees();
        let mut tally = Tally::new(self.config.clone(), self.tracer.clone());
        let mut ranks = vec![1.0f64; n];

        for _ in 0..iterations {
            let mut acc = vec![0.0f64; n];
            for shard in grid.stream(TraversalOrder::ColumnMajor) {
                tally.load_tile(shard.num_edges());
                // One MVM covers the whole tile: inputs are the source
                // ranks, cells the dense 1/outdeg image.
                tally.mac(self.config.tile_size as usize);
                let mut dsts = 0u64;
                let mut last_dst = u32::MAX;
                for e in shard.edges() {
                    acc[e.dst.index()] +=
                        ranks[e.src.index()] / f64::from(deg[e.src.index()].max(1));
                    if e.dst.raw() != last_dst {
                        dsts += 1;
                        last_dst = e.dst.raw();
                    }
                }
                tally.sfu(dsts);
                tally.attr_buf.write(8 * dsts);
            }
            tally.end_tile();
            for v in 0..n {
                ranks[v] = (1.0 - damping) + damping * acc[v];
            }
            tally.sfu(2 * n as u64);
            tally.output_buf.write(8 * n as u64);
        }

        let report = tally.finish("pagerank", iterations, graph.num_edges() as u64);
        Ok(RunOutcome {
            result: ranks,
            report,
        })
    }

    /// SSSP: row-serial tile processing, re-streaming every tile each
    /// superstep (no CAM to locate active sources).
    ///
    /// # Errors
    ///
    /// Returns a graph error for an empty graph or out-of-range source.
    pub fn sssp(
        &mut self,
        graph: &CooGraph,
        source: gaasx_graph::VertexId,
    ) -> Result<RunOutcome<Vec<f64>>, gaasx_graph::GraphError> {
        self.traversal(graph, source, false)
    }

    /// BFS: identical structure to SSSP with unit weights.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an empty graph or out-of-range source.
    pub fn bfs(
        &mut self,
        graph: &CooGraph,
        source: gaasx_graph::VertexId,
    ) -> Result<RunOutcome<Vec<f64>>, gaasx_graph::GraphError> {
        self.traversal(graph, source, true)
    }

    fn traversal(
        &mut self,
        graph: &CooGraph,
        source: gaasx_graph::VertexId,
        unit_weights: bool,
    ) -> Result<RunOutcome<Vec<f64>>, gaasx_graph::GraphError> {
        if source.raw() >= graph.num_vertices() {
            return Err(gaasx_graph::GraphError::VertexOutOfRange {
                vertex: source.raw(),
                num_vertices: graph.num_vertices(),
            });
        }
        let grid = GridPartition::new(graph, self.config.tile_size)?;
        let n = graph.num_vertices() as usize;
        let mut tally = Tally::new(self.config.clone(), self.tracer.clone());
        let mut dist = vec![f64::INFINITY; n];
        dist[source.index()] = 0.0;
        let mut supersteps = 0u32;

        loop {
            let mut changed = false;
            for shard in grid.stream(TraversalOrder::RowMajor) {
                tally.load_tile(shard.num_edges());
                // Row-serial: one MAC burst per occupied tile row,
                // regardless of whether its source is active. (Shard edges
                // are sorted by destination, so count distinct sources.)
                let mut srcs: Vec<u32> = shard.edges().iter().map(|e| e.src.raw()).collect();
                srcs.sort_unstable();
                srcs.dedup();
                let rows = srcs.len() as u64;
                for _ in 0..rows {
                    tally.mac(1);
                }
                tally.sfu(rows * u64::from(self.config.tile_size));

                for e in shard.edges() {
                    let dv = dist[e.src.index()];
                    if !dv.is_finite() {
                        continue;
                    }
                    let w = if unit_weights {
                        1.0
                    } else {
                        f64::from(e.weight)
                    };
                    let cand = dv + w;
                    if cand < dist[e.dst.index()] {
                        dist[e.dst.index()] = cand;
                        tally.attr_buf.write(8);
                        changed = true;
                    }
                }
            }
            tally.end_tile();
            supersteps += 1;
            if !changed || supersteps as usize >= n {
                break;
            }
        }
        tally.output_buf.write(8 * n as u64);

        let name = if unit_weights { "bfs" } else { "sssp" };
        let report = tally.finish(name, supersteps, graph.num_edges() as u64);
        Ok(RunOutcome {
            result: dist,
            report,
        })
    }

    /// Collaborative filtering: dense-mapped rating tiles with the paper's
    /// two-phase update. The redundancy factor is the dense tile image —
    /// every user–item pair of an occupied tile row/column computes,
    /// rated or not.
    ///
    /// # Errors
    ///
    /// Returns a graph error for an empty rating set.
    pub fn cf(
        &mut self,
        ratings: &BipartiteGraph,
        features: usize,
        epochs: u32,
        learning_rate: f64,
        regularization: f64,
        seed: u64,
    ) -> Result<RunOutcome<CfModel>, gaasx_graph::GraphError> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let t = self.config.tile_size;
        let mut tally = Tally::new(self.config.clone(), self.tracer.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let scale = 0.5 / (features as f32).sqrt();
        let mut init = |n: u32| -> Vec<Vec<f32>> {
            (0..n)
                .map(|_| (0..features).map(|_| rng.gen_range(0.0..scale)).collect())
                .collect()
        };
        let mut user_f = init(ratings.num_users());
        let mut item_f = init(ratings.num_items());
        let segs = features.div_ceil(8) as u64;
        let rows_per_vector = (2 * features).div_ceil(16) as u64;

        // Tile the (user × item) rating matrix.
        let coo = ratings.to_coo();
        let grid = GridPartition::new(&coo, t)?;

        for _ in 0..epochs {
            for shard in grid.stream(TraversalOrder::ColumnMajor) {
                tally.load_tile(shard.num_edges());
                let mut items: Vec<u32> = shard.edges().iter().map(|e| e.dst.raw()).collect();
                items.sort_unstable();
                items.dedup();
                let mut users: Vec<u32> = shard.edges().iter().map(|e| e.src.raw()).collect();
                users.sort_unstable();
                users.dedup();
                // The tile's occupied lines bring their feature vectors
                // into this PE's attribute crossbars.
                tally.load_tile_features((users.len() + items.len()) as u64 * rows_per_vector, 16);

                // Dense feature MACs: per phase, per occupied line, the
                // engine runs dual-rail feature ops across all T
                // counterpart rows — rated or not.
                for _ in 0..(items.len() + users.len()) {
                    for _ in 0..(segs * 2) {
                        tally.mac(t as usize);
                    }
                }
                tally.sfu((items.len() + users.len()) as u64 * features as u64 * 3);

                // Functional SGD on the actual ratings only.
                for e in shard.edges() {
                    let u = e.src.index();
                    let i = e.dst.index() - ratings.num_users() as usize;
                    let pred: f64 = user_f[u]
                        .iter()
                        .zip(&item_f[i])
                        .map(|(&a, &b)| f64::from(a) * f64::from(b))
                        .sum();
                    let err = f64::from(e.weight) - pred;
                    for k in 0..features {
                        let pu = f64::from(user_f[u][k]);
                        let pi = f64::from(item_f[i][k]);
                        user_f[u][k] =
                            (pu + learning_rate * (err * pi - regularization * pu)) as f32;
                        item_f[i][k] =
                            (pi + learning_rate * (err * pu - regularization * pi)) as f32;
                    }
                    tally.attr_buf.write(8 * features as u64);
                }
            }
            tally.end_tile();
        }

        let report = tally.finish("cf", epochs, ratings.num_ratings() as u64);
        Ok(RunOutcome {
            result: CfModel::from_parts(user_f, item_f),
            report,
        })
    }
}

impl Default for GraphR {
    fn default() -> Self {
        GraphR::new(GraphRConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gaasx_graph::{generators, VertexId};

    #[test]
    fn pagerank_matches_oracle_exactly() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 800).with_seed(2)).unwrap();
        let mut gr = GraphR::new(GraphRConfig::small());
        let out = gr.pagerank(&g, 0.85, 6).unwrap();
        let want = reference::pagerank(&g, 0.85, 6);
        for (a, b) in out.result.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 7, 800).with_seed(3)).unwrap();
        let mut gr = GraphR::new(GraphRConfig::small());
        let out = gr.sssp(&g, VertexId::new(0)).unwrap();
        assert_eq!(out.result, reference::dijkstra(&g, VertexId::new(0)));
    }

    #[test]
    fn bfs_matches_reference() {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(4)).unwrap();
        let mut gr = GraphR::new(GraphRConfig::small());
        let out = gr.bfs(&g, VertexId::new(0)).unwrap();
        assert_eq!(out.result, reference::bfs(&g, VertexId::new(0)));
    }

    #[test]
    fn dense_mapping_writes_full_tiles() {
        let g = generators::path_graph(32); // 31 edges
        let mut gr = GraphR::new(GraphRConfig::small());
        let out = gr.pagerank(&g, 0.85, 1).unwrap();
        // Non-empty tiles at T=16: diagonal 2 + 1 crossing = 3 tiles;
        // each writes 16×16×8 device cells.
        assert_eq!(out.report.ops.cells_written, 3 * 256 * 8);
        // Dense compute: 3 tiles × 256 cells ≫ 31 edges.
        assert_eq!(out.report.ops.compute_items, 3 * 256);
    }

    #[test]
    fn traversal_reloads_every_superstep() {
        // A reversed path defeats the in-superstep Gauss–Seidel effect of
        // ascending-destination edge order, forcing one superstep per hop.
        let g = generators::path_graph(16).transposed();
        let mut gr = GraphR::new(GraphRConfig::small());
        let out = gr.bfs(&g, VertexId::new(15)).unwrap();
        assert!(out.report.iterations >= 15, "{}", out.report.iterations);
        assert_eq!(
            out.report.ops.cells_written,
            u64::from(out.report.iterations) * 256 * 8
        );
    }

    #[test]
    fn report_is_well_formed() {
        let g = generators::paper_fig7_graph();
        let mut gr = GraphR::new(GraphRConfig::small());
        let out = gr.pagerank(&g, 0.85, 2).unwrap();
        assert_eq!(out.report.engine, "graphr");
        assert!(out.report.elapsed_ns.ns() > 0.0);
        assert!(out.report.energy.total_nj().nj() > 0.0);
        assert_eq!(out.report.energy.cam_nj, Nanojoules::ZERO);
    }

    #[test]
    fn cf_training_reduces_rmse() {
        let ratings = BipartiteGraph::synthetic(30, 12, 300, 5).unwrap();
        let mut gr = GraphR::new(GraphRConfig::small());
        let before = gr
            .cf(&ratings, 8, 0, 0.02, 0.02, 7)
            .unwrap()
            .result
            .rmse(&ratings)
            .unwrap();
        let after = gr
            .cf(&ratings, 8, 5, 0.02, 0.02, 7)
            .unwrap()
            .result
            .rmse(&ratings)
            .unwrap();
        assert!(after < before, "rmse {before} -> {after}");
    }

    #[test]
    fn rejects_bad_source() {
        let g = generators::path_graph(4);
        let mut gr = GraphR::new(GraphRConfig::small());
        assert!(gr.sssp(&g, VertexId::new(9)).is_err());
    }
}
