//! Unit-coherence regression tests over the baseline cost models.
//!
//! Every baseline converts between wall-clock (`Nanos`) and energy
//! (`Nanojoules`) through exactly one dimensional door — power × time —
//! and rescales the two lanes with *independent* dimensionless ratios.
//! These tests pin that separation: a regression that leaks one unit
//! into the other's lane (the class of bug `gaasx-lint`'s `mixed-units`
//! pass exists to catch statically) breaks a linearity identity here at
//! runtime, even if the magnitudes still look plausible.

#![allow(clippy::unwrap_used)]

use gaasx_baselines::cpu::HostPowerModel;
use gaasx_baselines::gpu::GpuModel;
use gaasx_baselines::gram::GramModel;
use gaasx_graph::generators;
use gaasx_sim::{Nanojoules, Nanos, RunReport};

fn graphr_report(elapsed_ns: f64, mac_nj: f64) -> RunReport {
    let mut r = RunReport::new("graphr", "pagerank", "AZ");
    r.elapsed_ns = Nanos::from_ns(elapsed_ns);
    r.energy.mac_nj = Nanojoules::from_nj(mac_nj);
    r.iterations = 10;
    r.num_edges = 1000;
    r
}

/// The host model's single time→energy door is `W × ns = nJ`, exactly.
#[test]
fn host_power_energy_is_power_times_time() {
    let host = HostPowerModel::xeon_bronze();
    let elapsed = Nanos::from_ns(3.25e9);
    let r = host.report("gapbs", "pagerank", elapsed, 10, 1_000);
    assert_eq!(
        r.energy.total_nj().nj(),
        host.dynamic_power_w * elapsed.ns()
    );
    // Doubling time exactly doubles energy — no constant term leaks in.
    let r2 = host.report("gapbs", "pagerank", elapsed * 2.0, 10, 1_000);
    assert_eq!(r2.energy.total_nj().nj(), 2.0 * r.energy.total_nj().nj());
}

/// The GPU model honours the same door across its analytic runtime.
#[test]
fn gpu_energy_tracks_elapsed_linearly() {
    let gpu = GpuModel::titan_v();
    let g = generators::paper_fig7_graph();
    let r5 = gpu.pagerank(&g, 5);
    let r10 = gpu.pagerank(&g, 10);
    // Energy/time ratio is the (constant) dynamic power in both runs:
    // any unit mixed into either lane would skew one ratio.
    let p5 = r5.energy.total_nj().nj() / r5.elapsed_ns.ns();
    let p10 = r10.energy.total_nj().nj() / r10.elapsed_ns.ns();
    assert!((p5 - gpu.dynamic_power_w).abs() < 1e-9, "{p5}");
    assert!((p10 - gpu.dynamic_power_w).abs() < 1e-9, "{p10}");
}

/// GRAM's published perf and energy ratios rescale their own lanes and
/// never cross: elapsed × perf and energy × energy-ratio both recover
/// the GraphR report.
#[test]
fn gram_rescales_time_and_energy_lanes_independently() {
    let model = GramModel::for_algorithm("pagerank").unwrap();
    let graphr = graphr_report(2.8e6, 4.0e6);
    let gram = model.report_from_graphr(&graphr);
    assert!(((gram.elapsed_ns * model.perf_vs_graphr) / graphr.elapsed_ns - 1.0).abs() < 1e-12);
    assert!(
        (gram.energy.total_nj().nj() * model.energy_vs_graphr / graphr.energy.total_nj().nj()
            - 1.0)
            .abs()
            < 1e-12
    );
}

/// Scaling only the *time* lane of the input leaves GRAM's energy lane
/// bit-identical — the regression a time/energy mix-up would break.
#[test]
fn gram_time_lane_does_not_leak_into_energy() {
    let model = GramModel::for_algorithm("bfs").unwrap();
    let base = model.report_from_graphr(&graphr_report(1.0e6, 5.0e6));
    let slow = model.report_from_graphr(&graphr_report(7.0e6, 5.0e6));
    assert_eq!(
        base.energy.total_nj().nj().to_bits(),
        slow.energy.total_nj().nj().to_bits()
    );
    assert!((slow.elapsed_ns / base.elapsed_ns - 7.0).abs() < 1e-12);
    // And symmetrically: scaling only energy leaves time untouched.
    let hot = model.report_from_graphr(&graphr_report(1.0e6, 15.0e6));
    assert_eq!(
        base.elapsed_ns.ns().to_bits(),
        hot.elapsed_ns.ns().to_bits()
    );
    assert!((hot.energy.total_nj() / base.energy.total_nj() - 3.0).abs() < 1e-12);
}
