//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A simple column-aligned text table.
///
/// ```
/// use gaasx_sim::table::Table;
///
/// let mut t = Table::new(&["dataset", "speedup"]);
/// t.row(&["WV", "7.7"]);
/// let s = t.to_string();
/// assert!(s.contains("dataset"));
/// assert!(s.contains("WV"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|s| (*s).to_string())
            .collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        self.row(&refs)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<1$}|", "", w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio like the paper does: two significant decimals with a
/// trailing `×`.
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}×")
    } else if x >= 10.0 {
        format!("{x:.1}×")
    } else {
        format!("{x:.2}×")
    }
}

/// Formats a count with thousands separators (`1_234_567 -> "1,234,567"`).
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xx", "y"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("| a "));
        assert!(lines[1].starts_with("|--"));
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn rows_pad_and_truncate() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        assert_eq!(t.num_rows(), 2);
        assert!(t.to_string().lines().all(|l| l.matches('|').count() == 3));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(7.74), "7.74×");
        assert_eq!(ratio(22.4), "22.4×");
        assert_eq!(ratio(805.44), "805×");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1_000), "1,000");
        assert_eq!(count(1_234_567), "1,234,567");
    }
}
