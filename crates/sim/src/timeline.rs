//! Bank-occupancy timelines: per-bank, per-lane intervals on the modeled
//! time axis, utilization reports derived from them, and Chrome-trace
//! export.
//!
//! Every billed device operation (CAM search, MAC burst, block
//! stream/program, SFU op, verify-read) occupies one
//! [`TimelineInterval`] on a `(bank, lane)` track. Engines build the
//! timeline at `finish` time by replaying their committed block-cost
//! stream through the same scheduler math that produces the makespan, so
//! a sharded run — which reassembles the cost stream in canonical order —
//! yields a bit-identical timeline to a serial one.
//!
//! ## Lanes
//!
//! Each physical bank carries up to three lanes: [`LOAD_LANE`] holds one
//! interval per block (streaming plus row programming), [`COMPUTE_LANE`]
//! holds one interval per non-search compute operation (MAC bursts, SFU
//! ops), and [`SEARCH_LANE`] holds CAM-search intervals, which the
//! engine's pipeline model may overlap with compute on the same bank.
//! Both compute-side lanes are laid from the block's scheduled compute
//! start at the offsets the intra-block pipeline clock produced.
//! Controller work that happens outside any block (auxiliary loads,
//! reduce arithmetic) lives on the synthetic [`CONTROLLER_BANK`].
//!
//! ## The conservation invariant
//!
//! [`Timeline::phase_busy_ns`] folds interval durations back into
//! per-phase busy totals using **the same grouping and addition order**
//! the engine's accounting uses (per block: one load term, then the
//! block's per-phase compute subtotals rebuilt in op order). Because
//! float addition does not re-associate, replicating the fold is what
//! makes the timeline conserve the engine's phase attribution
//! *bit-exactly* — asserted by a `debug_assert` in the engine's `finish`
//! and by property tests. Per-bank totals regroup the same durations
//! across a different axis, so they conserve only up to f64 rounding.

use serde::{Deserialize, Serialize};

use crate::obs::{Phase, Sink, SpanEvent};
use crate::units::Nanos;
use parking_lot::Mutex;

/// Synthetic bank id for controller-side work performed outside any
/// block (out-of-block SFU arithmetic, parallel auxiliary loads).
pub const CONTROLLER_BANK: u32 = u32::MAX;

/// Lane holding block load intervals (stream + row programming).
pub const LOAD_LANE: u32 = 0;

/// Lane holding per-operation compute intervals.
pub const COMPUTE_LANE: u32 = 1;

/// Lane holding CAM-search intervals when the engine models search/MAC
/// pipeline overlap: searches for the next vertex proceed while the
/// previous MAC burst drains, so they occupy their own track. The
/// conservation fold treats any lane other than [`LOAD_LANE`] as compute,
/// so splitting searches onto this lane leaves per-phase busy totals
/// bit-identical.
pub const SEARCH_LANE: u32 = 2;

/// One occupancy interval on a `(bank, lane)` track of the modeled-time
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineInterval {
    /// Bank id ([`CONTROLLER_BANK`] for out-of-block controller work).
    pub bank: u32,
    /// Lane within the bank ([`LOAD_LANE`] or [`COMPUTE_LANE`]).
    pub lane: u32,
    /// Execution phase of the operation.
    pub phase: Phase,
    /// Start on the modeled time axis.
    pub start_ns: Nanos,
    /// Duration. Never clamped: the conservation fold consumes these
    /// exact values.
    pub dur_ns: Nanos,
    /// Index of the block this operation belongs to, in canonical
    /// cost-stream order; `None` for controller work.
    pub block: Option<u32>,
}

impl TimelineInterval {
    /// End of the interval.
    pub fn end_ns(&self) -> Nanos {
        self.start_ns + self.dur_ns
    }
}

/// An append-only occupancy timeline with per-`(bank, lane)` placement
/// cursors that keep every track free of overlaps.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    intervals: Vec<TimelineInterval>,
    /// End of the last interval per `(bank, lane)` track.
    cursors: std::collections::BTreeMap<(u32, u32), Nanos>,
    makespan_ns: Nanos,
}

impl Timeline {
    /// An empty timeline for a run of the given scheduled makespan.
    pub fn new(makespan_ns: Nanos) -> Self {
        Timeline {
            intervals: Vec::new(),
            cursors: std::collections::BTreeMap::new(),
            makespan_ns,
        }
    }

    /// Rebuilds a timeline from already-placed intervals, e.g. drained
    /// from a [`TimelineSink`]. Placement is idempotent: re-pushing a
    /// stream of per-track non-overlapping intervals in emission order
    /// reproduces their starts and durations exactly.
    pub fn from_intervals(makespan_ns: Nanos, intervals: &[TimelineInterval]) -> Self {
        let mut tl = Timeline::new(makespan_ns);
        for iv in intervals {
            tl.push(iv.bank, iv.lane, iv.phase, iv.start_ns, iv.dur_ns, iv.block);
        }
        tl
    }

    /// The scheduled makespan this timeline describes.
    pub fn makespan_ns(&self) -> Nanos {
        self.makespan_ns
    }

    /// Appends an interval at `start_ns.max(track cursor)` — a nominal
    /// start earlier than the track's last end is pushed right so tracks
    /// never overlap. The *duration* is recorded verbatim (conservation
    /// consumes durations, not placements). Zero or negative durations
    /// are dropped.
    pub fn push(
        &mut self,
        bank: u32,
        lane: u32,
        phase: Phase,
        start_ns: Nanos,
        dur_ns: Nanos,
        block: Option<u32>,
    ) {
        if dur_ns <= Nanos::ZERO || dur_ns.ns().is_nan() {
            return;
        }
        let cursor = self.cursors.entry((bank, lane)).or_insert(Nanos::ZERO);
        let start = start_ns.max(*cursor);
        *cursor = start + dur_ns;
        self.intervals.push(TimelineInterval {
            bank,
            lane,
            phase,
            start_ns: start,
            dur_ns,
            block,
        });
    }

    /// The intervals in emission order (controller work first, then
    /// blocks in canonical cost-stream order).
    pub fn intervals(&self) -> &[TimelineInterval] {
        &self.intervals
    }

    /// Number of intervals recorded.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the timeline holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Latest interval end across all tracks (0 when empty). Can exceed
    /// [`Timeline::makespan_ns`] when track serialization pushed
    /// intervals past their nominal slots.
    pub fn max_end_ns(&self) -> Nanos {
        self.cursors
            .values()
            .fold(Nanos::ZERO, |acc, &v| acc.max(v))
    }

    /// Folds interval durations into per-phase busy totals (indexed by
    /// [`Phase::index`]), replicating the engine accounting fold exactly:
    /// controller intervals add first, then per block — in stream order —
    /// one load term followed by the block's per-phase compute subtotals
    /// (rebuilt from the ops in issue order, added as one term per
    /// phase). See the module docs for why the grouping matters.
    pub fn phase_busy_ns(&self) -> [Nanos; 7] {
        let mut busy = [Nanos::ZERO; 7];
        let mut cur_block: Option<u32> = None;
        let mut pending_load = Nanos::ZERO;
        let mut pending_compute = [Nanos::ZERO; 7];
        let flush = |busy: &mut [Nanos; 7], load: &mut Nanos, compute: &mut [Nanos; 7]| {
            busy[Phase::LoadBlock.index()] += *load;
            for (acc, ns) in busy.iter_mut().zip(compute.iter()) {
                *acc += *ns;
            }
            *load = Nanos::ZERO;
            *compute = [Nanos::ZERO; 7];
        };
        for iv in &self.intervals {
            if iv.block != cur_block {
                if cur_block.is_some() {
                    flush(&mut busy, &mut pending_load, &mut pending_compute);
                }
                cur_block = iv.block;
            }
            match iv.block {
                None => busy[iv.phase.index()] += iv.dur_ns,
                Some(_) => {
                    if iv.lane == LOAD_LANE {
                        pending_load += iv.dur_ns;
                    } else {
                        pending_compute[iv.phase.index()] += iv.dur_ns;
                    }
                }
            }
        }
        if cur_block.is_some() {
            flush(&mut busy, &mut pending_load, &mut pending_compute);
        }
        busy
    }
}

/// Busy/idle/overlap accounting for one bank, derived from its timeline
/// tracks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankUtilization {
    /// Bank id ([`CONTROLLER_BANK`] for the controller row).
    pub bank: u32,
    /// Total load-lane occupancy (streaming + programming).
    pub load_busy_ns: Nanos,
    /// Total compute-side occupancy (sum of compute- and search-lane
    /// interval durations; search/MAC overlap is *not* deduplicated here,
    /// mirroring the per-phase busy accounting).
    pub compute_busy_ns: Nanos,
    /// Union occupancy of all lanes (busy on *any*).
    pub busy_ns: Nanos,
    /// Time the load lane and the compute-side lanes were busy
    /// simultaneously — the double-buffering overlap this bank actually
    /// achieved.
    pub overlap_ns: Nanos,
    /// `busy_ns / makespan_ns` (0 for a zero makespan). Can nudge past
    /// 1.0 when track serialization pushed work past the makespan.
    pub utilization: f64,
}

/// Per-bank utilization summary of one run, attached to
/// [`crate::RunReport`] when the run recorded a timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Scheduled makespan of the run (equals the report's `elapsed_ns`).
    pub makespan_ns: Nanos,
    /// Per-bank rows, ascending by bank id with the controller row last.
    pub banks: Vec<BankUtilization>,
    /// Per-phase busy totals (indexed by [`Phase::index`]) — the
    /// conservation anchor: bit-identical to the `busy_ns` values of the
    /// report's phase attribution.
    pub phase_busy_ns: [Nanos; 7],
    /// The busiest physical bank (the critical path under the bank-
    /// parallel schedule); `None` when no physical bank saw work.
    pub critical_bank: Option<u32>,
    /// `(serial − pipelined) / serial` makespan ratio of the wave
    /// load/compute stage times: 0 means no overlap was available, higher
    /// means the double-buffered pipeline hid more of the load time.
    pub pipeline_overlap_ratio: f64,
}

impl UtilizationReport {
    /// Derives the per-bank utilization view from a timeline.
    /// `pipeline_overlap_ratio` comes from the engine's wave stage times
    /// (the timeline alone cannot reconstruct the unpipelined serial
    /// makespan).
    pub fn from_timeline(timeline: &Timeline, pipeline_overlap_ratio: f64) -> Self {
        let makespan_ns = timeline.makespan_ns();
        // Group per bank. Each individual lane is sorted and
        // non-overlapping by construction, but the compute side spans two
        // lanes (COMPUTE_LANE and SEARCH_LANE) whose intervals interleave
        // and may genuinely overlap under the search/MAC pipeline — those
        // are sorted and swept into a union before the load/compute merge.
        let mut bank_ids: Vec<u32> = timeline.intervals().iter().map(|iv| iv.bank).collect();
        bank_ids.sort_unstable();
        bank_ids.dedup();
        // Controller row renders last.
        if let Some(pos) = bank_ids.iter().position(|&b| b == CONTROLLER_BANK) {
            bank_ids.remove(pos);
            bank_ids.push(CONTROLLER_BANK);
        }
        let mut banks = Vec::with_capacity(bank_ids.len());
        for &bank in &bank_ids {
            let load: Vec<(f64, f64)> = timeline
                .intervals()
                .iter()
                .filter(|iv| iv.bank == bank && iv.lane == LOAD_LANE)
                .map(|iv| (iv.start_ns.ns(), iv.end_ns().ns()))
                .collect();
            let mut compute: Vec<(f64, f64)> = timeline
                .intervals()
                .iter()
                .filter(|iv| iv.bank == bank && iv.lane != LOAD_LANE)
                .map(|iv| (iv.start_ns.ns(), iv.end_ns().ns()))
                .collect();
            // `+ 0.0` normalizes the `-0.0` an empty lane's sum produces.
            let load_busy_ns: f64 = load.iter().map(|&(s, e)| e - s).sum::<f64>() + 0.0;
            let compute_busy_ns: f64 = compute.iter().map(|&(s, e)| e - s).sum::<f64>() + 0.0;
            compute.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let compute = merge_sorted(compute);
            let compute_union_ns: f64 = compute.iter().map(|&(s, e)| e - s).sum::<f64>() + 0.0;
            let busy_ns = union_ns(&load, &compute);
            let overlap_ns = (load_busy_ns + compute_union_ns - busy_ns).max(0.0);
            banks.push(BankUtilization {
                bank,
                load_busy_ns: Nanos::from_ns(load_busy_ns),
                compute_busy_ns: Nanos::from_ns(compute_busy_ns),
                busy_ns: Nanos::from_ns(busy_ns),
                overlap_ns: Nanos::from_ns(overlap_ns),
                utilization: if makespan_ns > Nanos::ZERO {
                    busy_ns / makespan_ns.ns()
                } else {
                    0.0
                },
            });
        }
        let critical_bank = banks
            .iter()
            .filter(|b| b.bank != CONTROLLER_BANK)
            .max_by(|a, b| a.busy_ns.total_cmp(&b.busy_ns))
            .map(|b| b.bank);
        UtilizationReport {
            makespan_ns,
            banks,
            phase_busy_ns: timeline.phase_busy_ns(),
            critical_bank,
            pipeline_overlap_ratio,
        }
    }

    /// The row for `bank`, if it saw any work.
    pub fn bank(&self, bank: u32) -> Option<&BankUtilization> {
        self.banks.iter().find(|b| b.bank == bank)
    }

    /// Total busy time across all phases (sum of the conservation anchor).
    pub fn total_busy_ns(&self) -> Nanos {
        self.phase_busy_ns.iter().sum()
    }

    /// Mean utilization over the physical banks that saw work (the
    /// controller row is excluded).
    pub fn mean_utilization(&self) -> f64 {
        let rows: Vec<&BankUtilization> = self
            .banks
            .iter()
            .filter(|b| b.bank != CONTROLLER_BANK)
            .collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|b| b.utilization).sum::<f64>() / rows.len() as f64
    }
}

/// Collapses a start-sorted interval list into its non-overlapping
/// union (touching intervals merge).
fn merge_sorted(intervals: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        match merged.last_mut() {
            Some((_, end)) if s <= *end => *end = end.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Length of the union of two sorted, internally non-overlapping
/// interval lists.
fn union_ns(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let mut total = 0.0f64;
    let mut open: Option<(f64, f64)> = None;
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x.0 <= y.0 {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        match &mut open {
            Some((_, end)) if next.0 <= *end => *end = end.max(next.1),
            Some((start, end)) => {
                total += *end - *start;
                open = Some(next);
            }
            None => open = Some(next),
        }
    }
    if let Some((start, end)) = open {
        total += end - start;
    }
    total
}

/// Buffers every timeline interval in memory, in emission order.
///
/// Attaching a `TimelineSink` (directly or alongside other sinks) is what
/// switches an engine into timeline recording: the tracer reports
/// [`Sink::observes_intervals`], the engine records its per-op ledger,
/// and `finish` emits the built timeline here and attaches a
/// [`UtilizationReport`] to the run report.
#[derive(Debug, Default)]
pub struct TimelineSink {
    intervals: Mutex<Vec<TimelineInterval>>,
}

impl TimelineSink {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the buffered intervals in emission order.
    pub fn take(&self) -> Vec<TimelineInterval> {
        std::mem::take(&mut self.intervals.lock())
    }

    /// Copies the buffered intervals without draining.
    pub fn snapshot(&self) -> Vec<TimelineInterval> {
        self.intervals.lock().clone()
    }

    /// Number of intervals currently buffered.
    pub fn len(&self) -> usize {
        self.intervals.lock().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.lock().is_empty()
    }
}

impl Sink for TimelineSink {
    fn on_span(&self, _event: &SpanEvent) {}

    fn observes_spans(&self) -> bool {
        false
    }

    fn on_interval(&self, interval: &TimelineInterval) {
        self.intervals.lock().push(*interval);
    }

    fn observes_intervals(&self) -> bool {
        true
    }
}

/// JSON has no NaN/Infinity literals; encode them as null.
fn push_us(out: &mut String, ns: f64) {
    let us = ns / 1_000.0;
    if us.is_finite() {
        out.push_str(&format!("{us:.6}"));
    } else {
        out.push_str("null");
    }
}

fn tid_of(bank: u32, lane: u32) -> u64 {
    if bank == CONTROLLER_BANK {
        0
    } else {
        u64::from(bank) * 3 + u64::from(lane) + 1
    }
}

/// Renders one interval as a Chrome-trace JSONL record (no newline) —
/// the per-event encoding [`crate::JsonlSink`] streams for intervals.
pub fn interval_to_json(iv: &TimelineInterval) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"interval\",\"bank\":");
    out.push_str(&iv.bank.to_string());
    out.push_str(",\"lane\":");
    out.push_str(&iv.lane.to_string());
    out.push_str(",\"phase\":\"");
    out.push_str(iv.phase.name());
    out.push_str("\",\"start_ns\":");
    push_ns(&mut out, iv.start_ns.ns());
    out.push_str(",\"dur_ns\":");
    push_ns(&mut out, iv.dur_ns.ns());
    if let Some(block) = iv.block {
        out.push_str(",\"block\":");
        out.push_str(&block.to_string());
    }
    out.push('}');
    out
}

fn push_ns(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push_str("null");
    }
}

/// Renders a timeline as Chrome trace-event JSON (the format Perfetto
/// and `chrome://tracing` load): one complete (`"ph":"X"`) event per
/// interval with timestamps in microseconds, plus thread-name metadata
/// labeling each `(bank, lane)` track.
pub fn chrome_trace_json(timeline: &Timeline) -> String {
    let mut out = String::with_capacity(256 + timeline.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    // Thread-name metadata for each distinct track, in tid order.
    let mut tracks: Vec<(u32, u32)> = timeline
        .intervals()
        .iter()
        .map(|iv| (iv.bank, iv.lane))
        .collect();
    tracks.sort_unstable_by_key(|&(bank, lane)| tid_of(bank, lane));
    tracks.dedup();
    let mut first = true;
    for &(bank, lane) in &tracks {
        if !first {
            out.push(',');
        }
        first = false;
        let label = if bank == CONTROLLER_BANK {
            "controller".to_string()
        } else if lane == LOAD_LANE {
            format!("bank {bank} load")
        } else if lane == SEARCH_LANE {
            format!("bank {bank} search")
        } else {
            format!("bank {bank} compute")
        };
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{label}\"}}}}",
            tid_of(bank, lane)
        ));
    }
    for iv in timeline.intervals() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        out.push_str(iv.phase.name());
        out.push_str("\",\"ph\":\"X\",\"pid\":0,\"tid\":");
        out.push_str(&tid_of(iv.bank, iv.lane).to_string());
        out.push_str(",\"ts\":");
        push_us(&mut out, iv.start_ns.ns());
        out.push_str(",\"dur\":");
        push_us(&mut out, iv.dur_ns.ns());
        out.push_str(",\"args\":{\"bank\":");
        out.push_str(&iv.bank.to_string());
        out.push_str(",\"lane\":");
        out.push_str(&iv.lane.to_string());
        if let Some(block) = iv.block {
            out.push_str(",\"block\":");
            out.push_str(&block.to_string());
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: f64) -> Nanos {
        Nanos::from_ns(v)
    }

    #[test]
    fn push_serializes_tracks_and_skips_zero_durations() {
        let mut tl = Timeline::new(ns(100.0));
        tl.push(0, COMPUTE_LANE, Phase::CamSearch, ns(0.0), ns(4.0), Some(0));
        // Nominal start inside the previous interval: pushed right.
        tl.push(
            0,
            COMPUTE_LANE,
            Phase::MacGather,
            ns(2.0),
            ns(30.0),
            Some(0),
        );
        // Another lane is an independent track.
        tl.push(0, LOAD_LANE, Phase::LoadBlock, ns(1.0), ns(5.0), Some(0));
        tl.push(0, COMPUTE_LANE, Phase::Sfu, ns(0.0), ns(0.0), Some(0));
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.intervals()[1].start_ns, ns(4.0));
        assert_eq!(tl.intervals()[2].start_ns, ns(1.0));
        assert_eq!(tl.max_end_ns(), ns(34.0));
        // Non-overlap per track.
        for w in [COMPUTE_LANE, LOAD_LANE] {
            let mut end = Nanos::ZERO;
            for iv in tl.intervals().iter().filter(|iv| iv.lane == w) {
                assert!(iv.start_ns >= end);
                end = iv.end_ns();
            }
        }
    }

    #[test]
    fn from_intervals_round_trips_placed_streams() {
        let mut tl = Timeline::new(ns(50.0));
        tl.push(
            CONTROLLER_BANK,
            LOAD_LANE,
            Phase::Sfu,
            ns(0.0),
            ns(0.125),
            None,
        );
        tl.push(0, LOAD_LANE, Phase::LoadBlock, ns(0.0), ns(10.0), Some(0));
        tl.push(0, COMPUTE_LANE, Phase::CamSearch, ns(2.0), ns(4.0), Some(0));
        tl.push(
            0,
            COMPUTE_LANE,
            Phase::MacGather,
            ns(3.0),
            ns(30.0),
            Some(0),
        );
        let rebuilt = Timeline::from_intervals(tl.makespan_ns(), tl.intervals());
        assert_eq!(rebuilt.intervals(), tl.intervals());
        assert_eq!(rebuilt.makespan_ns(), tl.makespan_ns());
        assert_eq!(rebuilt.phase_busy_ns(), tl.phase_busy_ns());
    }

    #[test]
    fn phase_busy_fold_matches_manual_accounting() {
        let mut tl = Timeline::new(ns(50.0));
        // Controller extras first.
        tl.push(
            CONTROLLER_BANK,
            LOAD_LANE,
            Phase::Sfu,
            ns(0.0),
            ns(0.125),
            None,
        );
        // Block 0: load then two compute ops.
        tl.push(0, LOAD_LANE, Phase::LoadBlock, ns(0.0), ns(10.0), Some(0));
        tl.push(
            0,
            COMPUTE_LANE,
            Phase::CamSearch,
            ns(10.0),
            ns(4.0),
            Some(0),
        );
        tl.push(
            0,
            COMPUTE_LANE,
            Phase::MacGather,
            ns(14.0),
            ns(30.0),
            Some(0),
        );
        // Block 1 on another bank.
        tl.push(1, LOAD_LANE, Phase::LoadBlock, ns(0.0), ns(7.0), Some(1));
        tl.push(1, COMPUTE_LANE, Phase::CamSearch, ns(7.0), ns(4.0), Some(1));
        let busy = tl.phase_busy_ns();
        assert_eq!(busy[Phase::LoadBlock.index()], ns(17.0));
        assert_eq!(busy[Phase::CamSearch.index()], ns(8.0));
        assert_eq!(busy[Phase::MacGather.index()], ns(30.0));
        assert_eq!(busy[Phase::Sfu.index()], ns(0.125));
        assert_eq!(busy[Phase::Init.index()], Nanos::ZERO);
    }

    #[test]
    fn utilization_report_accounts_overlap_and_critical_bank() {
        let mut tl = Timeline::new(ns(40.0));
        // Bank 0: load [0,10), compute [5,25) -> union 25, overlap 5.
        tl.push(0, LOAD_LANE, Phase::LoadBlock, ns(0.0), ns(10.0), Some(0));
        tl.push(
            0,
            COMPUTE_LANE,
            Phase::MacGather,
            ns(5.0),
            ns(20.0),
            Some(0),
        );
        // Bank 1: compute only.
        tl.push(1, COMPUTE_LANE, Phase::CamSearch, ns(0.0), ns(4.0), Some(1));
        // Controller row.
        tl.push(
            CONTROLLER_BANK,
            LOAD_LANE,
            Phase::Sfu,
            ns(0.0),
            ns(2.0),
            None,
        );
        let u = UtilizationReport::from_timeline(&tl, 0.25);
        assert_eq!(u.banks.len(), 3);
        let b0 = u.bank(0).unwrap();
        assert_eq!(b0.load_busy_ns, ns(10.0));
        assert_eq!(b0.compute_busy_ns, ns(20.0));
        assert_eq!(b0.busy_ns, ns(25.0));
        assert_eq!(b0.overlap_ns, ns(5.0));
        assert!((b0.utilization - 25.0 / 40.0).abs() < 1e-12);
        assert_eq!(u.critical_bank, Some(0));
        // Controller row is last and never the critical bank.
        assert_eq!(u.banks.last().unwrap().bank, CONTROLLER_BANK);
        assert_eq!(u.pipeline_overlap_ratio, 0.25);
        assert!(u.mean_utilization() > 0.0);
    }

    #[test]
    fn utilization_sweeps_overlapping_search_and_compute_lanes() {
        let mut tl = Timeline::new(ns(40.0));
        // Load [0,10). Compute lane [10,30). Search lane [14,18) overlaps
        // the MAC and [32,36) runs past it.
        tl.push(0, LOAD_LANE, Phase::LoadBlock, ns(0.0), ns(10.0), Some(0));
        tl.push(
            0,
            COMPUTE_LANE,
            Phase::MacGather,
            ns(10.0),
            ns(20.0),
            Some(0),
        );
        tl.push(0, SEARCH_LANE, Phase::CamSearch, ns(14.0), ns(4.0), Some(0));
        tl.push(0, SEARCH_LANE, Phase::CamSearch, ns(32.0), ns(4.0), Some(0));
        let u = UtilizationReport::from_timeline(&tl, 0.0);
        let b0 = u.bank(0).unwrap();
        // Duration sum keeps the overlapped search visible...
        assert_eq!(b0.compute_busy_ns, ns(28.0));
        // ...while the union dedups it: [10,30) ∪ [32,36) ∪ load [0,10).
        assert_eq!(b0.busy_ns, ns(34.0));
        // Load never overlaps the compute side here.
        assert_eq!(b0.overlap_ns, ns(0.0));
        // Per-phase fold still counts every interval once.
        let busy = u.phase_busy_ns;
        assert_eq!(busy[Phase::CamSearch.index()], ns(8.0));
        assert_eq!(busy[Phase::MacGather.index()], ns(20.0));
    }

    #[test]
    fn chrome_trace_labels_search_lane_with_distinct_tid() {
        let mut tl = Timeline::new(ns(20.0));
        tl.push(0, SEARCH_LANE, Phase::CamSearch, ns(0.0), ns(4.0), Some(0));
        tl.push(1, LOAD_LANE, Phase::LoadBlock, ns(0.0), ns(5.0), Some(1));
        let json = chrome_trace_json(&tl);
        assert!(json.contains("\"name\":\"bank 0 search\""));
        // Bank 0's search lane must not collide with bank 1's load lane.
        assert_ne!(tid_of(0, SEARCH_LANE), tid_of(1, LOAD_LANE));
    }

    #[test]
    fn union_handles_disjoint_nested_and_touching() {
        assert_eq!(union_ns(&[], &[]), 0.0);
        assert_eq!(union_ns(&[(0.0, 2.0)], &[]), 2.0);
        // Touching intervals merge seamlessly.
        assert_eq!(union_ns(&[(0.0, 2.0), (4.0, 6.0)], &[(2.0, 4.0)]), 6.0);
        // Nested intervals count once.
        assert_eq!(union_ns(&[(0.0, 10.0)], &[(2.0, 3.0), (5.0, 6.0)]), 10.0);
        // Disjoint.
        assert_eq!(union_ns(&[(0.0, 1.0)], &[(5.0, 6.0)]), 2.0);
    }

    #[test]
    fn timeline_sink_buffers_intervals() {
        use crate::obs::Tracer;
        use std::sync::Arc;
        let sink = Arc::new(TimelineSink::new());
        let t = Tracer::with_sink(sink.clone());
        assert!(t.observes_intervals());
        assert!(!t.observes_spans());
        let iv = TimelineInterval {
            bank: 3,
            lane: COMPUTE_LANE,
            phase: Phase::MacGather,
            start_ns: ns(1.0),
            dur_ns: ns(30.0),
            block: Some(0),
        };
        t.emit_interval(&iv);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.snapshot()[0], iv);
        assert_eq!(sink.take(), vec![iv]);
        assert!(sink.is_empty());
    }

    #[test]
    fn chrome_trace_encoding_is_wellformed() {
        let mut tl = Timeline::new(ns(40.0));
        tl.push(
            CONTROLLER_BANK,
            LOAD_LANE,
            Phase::Sfu,
            ns(0.0),
            ns(2.0),
            None,
        );
        tl.push(0, LOAD_LANE, Phase::LoadBlock, ns(0.0), ns(10.0), Some(0));
        tl.push(
            0,
            COMPUTE_LANE,
            Phase::MacGather,
            ns(10.0),
            ns(30.0),
            Some(0),
        );
        let json = chrome_trace_json(&tl);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"controller\""));
        assert!(json.contains("\"name\":\"bank 0 load\""));
        assert!(json.contains("\"name\":\"mac_gather\""));
        // 30 ns -> 0.030000 us.
        assert!(json.contains("\"dur\":0.030000"), "{json}");
        // Balanced braces (no nested strings contain braces).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn interval_json_is_stable() {
        let iv = TimelineInterval {
            bank: 2,
            lane: 1,
            phase: Phase::CamSearch,
            start_ns: ns(12.5),
            dur_ns: ns(4.0),
            block: Some(7),
        };
        assert_eq!(
            interval_to_json(&iv),
            "{\"type\":\"interval\",\"bank\":2,\"lane\":1,\"phase\":\"cam_search\",\
             \"start_ns\":12.500,\"dur_ns\":4.000,\"block\":7}"
        );
    }
}
