//! Cycle-level simulation kernel shared by the GaaS-X accelerator and its
//! PIM baselines.
//!
//! The kernel deliberately separates *what happened* from *what it cost*:
//! devices and accelerators record operation counts; this crate turns counts
//! into nanoseconds and nanojoules and renders them into comparable
//! reports. It provides:
//!
//! * [`EnergyBreakdown`] — per-component energy accounting,
//! * [`buffer::SramBuffer`] — CACTI-class on-chip SRAM access models for the
//!   paper's input/output/attribute buffers,
//! * [`Histogram`] — e.g. the rows-accumulated-per-MAC distribution behind
//!   Fig 13,
//! * [`pipeline`] — the two-stage load/compute overlap model of the shard
//!   streaming execution,
//! * [`obs`] — the tracing/metrics layer: phase spans, per-bank counters,
//!   and pluggable sinks (in-memory rollups or JSONL event streams),
//! * [`timeline`] — bank-occupancy timelines on the modeled time axis,
//!   per-bank [`UtilizationReport`]s, and Chrome-trace export,
//! * [`RunReport`] — the canonical result record each engine produces,
//! * [`table::Table`] — plain-text table rendering for the experiment
//!   binaries,
//! * [`stats`] — geometric means and summary helpers used across figures.

#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod des;
pub mod energy;
pub mod histogram;
pub mod obs;
pub mod pipeline;
pub mod report;
pub mod stats;
pub mod table;
pub mod tenant;
pub mod timeline;
pub mod units;

pub use buffer::SramBuffer;
pub use energy::EnergyBreakdown;
pub use histogram::Histogram;
pub use obs::{
    attribute_makespan, AggregateSink, BankBreakdown, JsonlSink, MemorySink, MetricsRegistry,
    NullSink, Phase, PhaseBreakdown, Sink, SpanEvent, Tracer,
};
pub use report::{FaultReport, OpSummary, RunReport};
pub use tenant::{TenantLedger, TenantUsage};
pub use timeline::{
    chrome_trace_json, BankUtilization, Timeline, TimelineInterval, TimelineSink,
    UtilizationReport, CONTROLLER_BANK,
};
pub use units::{Nanojoules, Nanos, Picojoules};
