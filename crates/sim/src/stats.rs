//! Summary statistics shared by the experiment harness.

/// Geometric mean of strictly positive samples.
///
/// The paper reports every cross-dataset aggregate as a geometric mean
/// (e.g. "the geometric mean of execution time speedup across all datasets
/// and algorithms is 7.74"). Returns `None` for an empty slice or any
/// non-positive sample.
///
/// ```
/// use gaasx_sim::stats::geometric_mean;
/// assert_eq!(geometric_mean(&[2.0, 8.0]), Some(4.0));
/// ```
pub fn geometric_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&s| !s.is_finite() || s <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|s| s.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

/// Arithmetic mean, or `None` for an empty slice.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Population standard deviation, or `None` for an empty slice.
pub fn std_dev(samples: &[f64]) -> Option<f64> {
    let m = mean(samples)?;
    Some((samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt())
}

/// The `q`-quantile (0.0..=1.0) of the samples via nearest-rank.
///
/// Returns `None` for an empty slice, `q` outside `[0, 1]` (including
/// NaN), or any NaN sample. Negative and infinite samples are ordered
/// normally.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) || samples.iter().any(|s| s.is_nan()) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64 * q).ceil() as usize).saturating_sub(1);
    Some(sorted[idx.min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geometric_mean(&[4.0]), Some(4.0));
        let g = geometric_mean(&[1.0, 10.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_rejects_bad_input() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
        assert_eq!(geometric_mean(&[f64::INFINITY]), None);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(std_dev(&[2.0, 2.0]), Some(0.0));
        assert!((std_dev(&[1.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn quantiles() {
        let s = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&s, 0.0), Some(1.0));
        assert_eq!(quantile(&s, 0.5), Some(3.0));
        assert_eq!(quantile(&s, 1.0), Some(5.0));
        assert_eq!(quantile(&s, 1.5), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_edge_cases() {
        // NaN anywhere — in q or in the samples — yields None, not a panic.
        assert_eq!(quantile(&[1.0, f64::NAN], 0.5), None);
        assert_eq!(quantile(&[1.0, 2.0], f64::NAN), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.0 + 1e-9), None);
        // Negative and infinite samples order normally.
        assert_eq!(quantile(&[-3.0, -1.0, -2.0], 0.0), Some(-3.0));
        assert_eq!(quantile(&[-3.0, -1.0, -2.0], 1.0), Some(-1.0));
        assert_eq!(
            quantile(&[f64::NEG_INFINITY, 0.0, f64::INFINITY], 0.5),
            Some(0.0)
        );
        // Single sample: every q maps to it.
        for q in [0.0, 0.25, 1.0] {
            assert_eq!(quantile(&[7.0], q), Some(7.0));
        }
    }

    #[test]
    fn geomean_edge_cases() {
        assert_eq!(geometric_mean(&[f64::NAN]), None);
        assert_eq!(geometric_mean(&[1.0, f64::NAN]), None);
        assert_eq!(geometric_mean(&[f64::NEG_INFINITY]), None);
        assert_eq!(geometric_mean(&[-0.0]), None);
        let tiny = geometric_mean(&[1e-300, 1e300]).unwrap();
        assert!((tiny - 1.0).abs() < 1e-9, "log-space stays stable: {tiny}");
    }

    #[test]
    fn std_dev_empty_is_none() {
        assert_eq!(std_dev(&[]), None);
        assert_eq!(std_dev(&[4.0]), Some(0.0));
    }
}
