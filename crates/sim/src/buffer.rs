//! On-chip SRAM buffer models.
//!
//! Table I lists three buffers: a 16 KB input buffer, a 64 KB output buffer,
//! and a 512 KB attribute buffer (the structure that localizes random vertex
//! updates on chip, §III-B). Access energies are CACTI-class 32 nm figures
//! scaled with capacity; the paper itself models these buffers with
//! CACTI (§V-A).

use serde::{Deserialize, Serialize};

use crate::units::{Nanojoules, Nanos, Picojoules};

/// Word width of one buffer access in bytes.
pub const ACCESS_WORD_BYTES: u64 = 32;

/// A banked SRAM scratch buffer with per-access energy accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramBuffer {
    name: String,
    capacity_bytes: u64,
    read_energy_pj: Picojoules,
    write_energy_pj: Picojoules,
    access_ns: Nanos,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl SramBuffer {
    /// Creates a buffer with explicit access costs.
    pub fn new(
        name: impl Into<String>,
        capacity_bytes: u64,
        read_energy_pj: Picojoules,
        write_energy_pj: Picojoules,
        access_ns: Nanos,
    ) -> Self {
        SramBuffer {
            name: name.into(),
            capacity_bytes,
            read_energy_pj,
            write_energy_pj,
            access_ns,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The 16 KB input buffer of Table I.
    pub fn input_16kb() -> Self {
        SramBuffer::new(
            "input",
            16 * 1024,
            Picojoules::from_pj(5.0),
            Picojoules::from_pj(6.0),
            Nanos::from_ns(0.5),
        )
    }

    /// The 64 KB output buffer of Table I.
    pub fn output_64kb() -> Self {
        SramBuffer::new(
            "output",
            64 * 1024,
            Picojoules::from_pj(10.0),
            Picojoules::from_pj(12.0),
            Nanos::from_ns(0.7),
        )
    }

    /// The 512 KB attribute buffer of Table I.
    pub fn attribute_512kb() -> Self {
        SramBuffer::new(
            "attribute",
            512 * 1024,
            Picojoules::from_pj(35.0),
            Picojoules::from_pj(40.0),
            Nanos::from_ns(1.2),
        )
    }

    /// Buffer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Records a read of `bytes`, counted in 32-byte word accesses.
    pub fn read(&mut self, bytes: u64) {
        let accesses = bytes
            .div_ceil(ACCESS_WORD_BYTES)
            .max(if bytes > 0 { 1 } else { 0 });
        self.reads = self.reads.saturating_add(accesses);
        self.bytes_read = self.bytes_read.saturating_add(bytes);
    }

    /// Records a write of `bytes`, counted in 32-byte word accesses.
    pub fn write(&mut self, bytes: u64) {
        let accesses = bytes
            .div_ceil(ACCESS_WORD_BYTES)
            .max(if bytes > 0 { 1 } else { 0 });
        self.writes = self.writes.saturating_add(accesses);
        self.bytes_written = self.bytes_written.saturating_add(bytes);
    }

    /// Total word accesses so far.
    pub fn accesses(&self) -> u64 {
        self.reads.saturating_add(self.writes)
    }

    /// Total energy so far in nanojoules.
    pub fn energy_nj(&self) -> Nanojoules {
        (self.reads as f64 * self.read_energy_pj + self.writes as f64 * self.write_energy_pj)
            .to_nanojoules()
    }

    /// Serial access latency so far (buffers are banked, so engines
    /// typically hide most of this behind crossbar latency; the figure is
    /// exposed for pessimistic bounds).
    pub fn serial_latency_ns(&self) -> Nanos {
        self.accesses() as f64 * self.access_ns
    }

    /// Adds another buffer's access counters into this one (the
    /// configuration is untouched) — used when a primary engine absorbs
    /// the buffer traffic of sibling worker engines after a sharded run.
    pub fn merge(&mut self, other: &SramBuffer) {
        self.reads = self.reads.saturating_add(other.reads);
        self.writes = self.writes.saturating_add(other.writes);
        self.bytes_read = self.bytes_read.saturating_add(other.bytes_read);
        self.bytes_written = self.bytes_written.saturating_add(other.bytes_written);
    }

    /// Resets the counters, keeping the configuration.
    pub fn reset(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_counting_rounds_to_words() {
        let mut b = SramBuffer::input_16kb();
        b.read(1); // 1 byte -> 1 word access
        b.read(64); // 64 bytes -> 2 word accesses
        b.write(33); // -> 2 word accesses
        assert_eq!(b.accesses(), 5);
    }

    #[test]
    fn zero_byte_access_is_free() {
        let mut b = SramBuffer::input_16kb();
        b.read(0);
        b.write(0);
        assert_eq!(b.accesses(), 0);
        assert_eq!(b.energy_nj(), Nanojoules::ZERO);
    }

    #[test]
    fn energy_scales_with_accesses() {
        let mut b = SramBuffer::new(
            "t",
            1024,
            Picojoules::from_pj(10.0),
            Picojoules::from_pj(20.0),
            Nanos::from_ns(1.0),
        );
        b.read(32);
        b.write(32);
        assert!((b.energy_nj().nj() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn presets_match_table1_capacities() {
        assert_eq!(SramBuffer::input_16kb().capacity_bytes(), 16 * 1024);
        assert_eq!(SramBuffer::output_64kb().capacity_bytes(), 64 * 1024);
        assert_eq!(SramBuffer::attribute_512kb().capacity_bytes(), 512 * 1024);
    }

    #[test]
    fn bigger_buffers_cost_more_per_access() {
        let small = SramBuffer::input_16kb();
        let big = SramBuffer::attribute_512kb();
        assert!(big.read_energy_pj > small.read_energy_pj);
    }

    #[test]
    fn merge_sums_counters_and_energy() {
        let mut a = SramBuffer::input_16kb();
        let mut b = SramBuffer::input_16kb();
        a.read(64);
        b.read(64);
        b.write(32);
        let solo_energy = a.energy_nj();
        a.merge(&b);
        assert_eq!(a.accesses(), 5);
        assert!(a.energy_nj() > solo_energy);
        // Merging is equivalent to having issued the accesses locally.
        let mut c = SramBuffer::input_16kb();
        c.read(64);
        c.read(64);
        c.write(32);
        assert_eq!(a, c);
    }

    #[test]
    fn reset_clears_counters() {
        let mut b = SramBuffer::output_64kb();
        b.read(100);
        b.reset();
        assert_eq!(b.accesses(), 0);
        assert_eq!(b.energy_nj(), Nanojoules::ZERO);
    }
}
