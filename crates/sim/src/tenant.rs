//! Per-tenant usage accounting for the serving layer.
//!
//! A multi-tenant server bills every query — completed, timed out, or
//! failed — to the tenant that issued it, in modeled nanoseconds of
//! device time plus the energy and operation counts behind them. The
//! ledger is the *single source of truth* for "how much did tenant X
//! consume": admission control reads it for quota checks, and the soak
//! harness cross-checks it against the per-response billing stream.
//!
//! # Exact conservation
//!
//! `f64` addition is not associative, so "per-tenant sums add up to the
//! total" is only bit-exact if both sides fold in the same order. The
//! ledger defines the canonical fold: each tenant's bill accumulates in
//! record order, and [`TenantLedger::total_billed_ns`] folds the
//! per-tenant sums in `BTreeMap` (lexicographic tenant-name) order. Any
//! independent recomputation that groups the same billing events per
//! tenant in the same record order and folds tenants lexicographically
//! reproduces the total to the last bit.

use std::collections::BTreeMap;

use crate::report::OpSummary;
use crate::units::{Nanojoules, Nanos};

/// Cumulative usage of one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantUsage {
    /// Queries admitted past admission control (whatever their outcome).
    pub admitted: u64,
    /// Queries that completed successfully.
    pub completed: u64,
    /// Queries rejected at admission (overload or quota) — never billed.
    pub rejected: u64,
    /// Admitted queries that ended in a typed failure (deadline, device
    /// fault, internal error). Partial work is still billed.
    pub failed: u64,
    /// Total modeled device time billed, in record order.
    pub billed_ns: Nanos,
    /// Total modeled energy billed.
    pub energy_nj: Nanojoules,
    /// Operation counts behind the bill.
    pub ops: OpSummary,
}

/// String-keyed per-tenant usage ledger (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TenantLedger {
    tenants: BTreeMap<String, TenantUsage>,
}

impl TenantLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TenantLedger::default()
    }

    fn entry(&mut self, tenant: &str) -> &mut TenantUsage {
        // Billing events are per-query, not per-op, so the key clone is
        // cheap relative to the work being billed.
        self.tenants.entry(tenant.to_string()).or_default()
    }

    /// Records an admitted query's bill: modeled time, energy, and the
    /// operation counts behind them. Call once per billing event, in
    /// response order — the per-tenant sum is order-sensitive in the last
    /// bit and defines the canonical fold.
    pub fn record_billed(&mut self, tenant: &str, ns: Nanos, energy: Nanojoules, ops: &OpSummary) {
        let u = self.entry(tenant);
        u.admitted = u.admitted.saturating_add(1);
        u.billed_ns += ns;
        u.energy_nj += energy;
        u.ops.merge(ops);
    }

    /// Marks the tenant's most recent billed query as completed.
    pub fn record_completed(&mut self, tenant: &str) {
        let u = self.entry(tenant);
        u.completed = u.completed.saturating_add(1);
    }

    /// Marks the tenant's most recent billed query as failed (typed
    /// error after admission; any partial bill was already recorded).
    pub fn record_failed(&mut self, tenant: &str) {
        let u = self.entry(tenant);
        u.failed = u.failed.saturating_add(1);
    }

    /// Records a rejection at admission control (no bill).
    pub fn record_rejected(&mut self, tenant: &str) {
        let u = self.entry(tenant);
        u.rejected = u.rejected.saturating_add(1);
    }

    /// The usage record for `tenant`, if it has appeared in the ledger.
    pub fn usage(&self, tenant: &str) -> Option<&TenantUsage> {
        self.tenants.get(tenant)
    }

    /// Total modeled time billed to `tenant` (zero if unseen).
    pub fn billed_ns(&self, tenant: &str) -> Nanos {
        self.tenants
            .get(tenant)
            .map_or(Nanos::ZERO, |u| u.billed_ns)
    }

    /// The canonical total: per-tenant bills folded in lexicographic
    /// tenant order (see the module docs for why the order matters).
    pub fn total_billed_ns(&self) -> Nanos {
        self.tenants.values().map(|u| u.billed_ns).sum()
    }

    /// Total energy billed across all tenants, in the canonical order.
    pub fn total_energy_nj(&self) -> Nanojoules {
        self.tenants.values().map(|u| u.energy_nj).sum()
    }

    /// The fraction of all billed time consumed by `tenant` (0.0 when
    /// nothing has been billed yet) — the soak harness's utilization
    /// column.
    pub fn billed_share(&self, tenant: &str) -> f64 {
        let total = self.total_billed_ns();
        if total == Nanos::ZERO {
            0.0
        } else {
            self.billed_ns(tenant) / total
        }
    }

    /// Iterates tenants in lexicographic (canonical fold) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TenantUsage)> {
        self.tenants.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of tenants seen.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no tenant has appeared yet.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bills_accumulate_per_tenant() {
        let mut ledger = TenantLedger::new();
        let ops = OpSummary {
            mac_ops: 3,
            ..OpSummary::new()
        };
        ledger.record_billed("acme", Nanos::from_ns(10.0), Nanojoules::from_nj(1.0), &ops);
        ledger.record_billed("acme", Nanos::from_ns(5.0), Nanojoules::from_nj(0.5), &ops);
        ledger.record_completed("acme");
        ledger.record_failed("acme");
        ledger.record_rejected("zeta");

        let acme = ledger.usage("acme").unwrap();
        assert_eq!(acme.admitted, 2);
        assert_eq!(acme.completed, 1);
        assert_eq!(acme.failed, 1);
        assert_eq!(acme.billed_ns, Nanos::from_ns(15.0));
        assert_eq!(acme.ops.mac_ops, 6);
        let zeta = ledger.usage("zeta").unwrap();
        assert_eq!(zeta.rejected, 1);
        assert_eq!(zeta.billed_ns, Nanos::ZERO);
        assert_eq!(ledger.billed_ns("ghost"), Nanos::ZERO);
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn total_is_the_canonical_lexicographic_fold() {
        // Values chosen so fold order changes the last bit: summing
        // {a, b, c} as (a + b) + c vs (c + b) + a differs for these.
        let (a, b, c) = (0.1f64, 0.2f64, 0.3f64);
        assert_ne!(((a + b) + c).to_bits(), ((c + b) + a).to_bits());

        let mut ledger = TenantLedger::new();
        // Insert in non-lexicographic order; the fold must still be
        // lexicographic ("alpha", "beta", "gamma").
        let zero = OpSummary::new();
        ledger.record_billed("gamma", Nanos::from_ns(c), Nanojoules::ZERO, &zero);
        ledger.record_billed("alpha", Nanos::from_ns(a), Nanojoules::ZERO, &zero);
        ledger.record_billed("beta", Nanos::from_ns(b), Nanojoules::ZERO, &zero);
        assert_eq!(
            ledger.total_billed_ns().ns().to_bits(),
            ((a + b) + c).to_bits()
        );

        let share = ledger.billed_share("alpha");
        assert_eq!(share.to_bits(), (a / ((a + b) + c)).to_bits());
        assert_eq!(ledger.billed_share("ghost"), 0.0);
    }

    #[test]
    fn empty_ledger_has_zero_totals() {
        let ledger = TenantLedger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.total_billed_ns(), Nanos::ZERO);
        assert_eq!(ledger.total_energy_nj(), Nanojoules::ZERO);
        assert_eq!(ledger.billed_share("anyone"), 0.0);
    }
}
