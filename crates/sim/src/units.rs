//! Typed units of measure for the modeled-cost accounting.
//!
//! Every number GaaS-X reports is a sum of per-op costs billed in
//! nanoseconds (time), picojoules (per-op energy), or nanojoules
//! (aggregated energy). Historically those were bare `f64`s, so nothing
//! stopped `elapsed_ns + energy_pj` from compiling — a single mixed-unit
//! add silently corrupts every downstream table. These newtypes make the
//! unit part of the type:
//!
//! * [`Nanos`] — modeled time in nanoseconds,
//! * [`Picojoules`] — per-operation energy (device-model granularity),
//! * [`Nanojoules`] — aggregated energy (report granularity).
//!
//! Design constraints, in priority order:
//!
//! 1. **Bit-identity.** All arithmetic delegates to the wrapped `f64`
//!    operation on the raw value, in the same order the untyped code
//!    performed it, so every report stays bit-identical to the pre-typed
//!    accounting (ROADMAP item 4's conservation gates depend on this).
//!    In particular [`Picojoules`] and [`Nanojoules`] are *distinct types*
//!    rather than auto-rescaling views of one another: a ×1000 rescale is
//!    not exact in floating point, so conversion is explicit and happens
//!    exactly where the untyped code divided by 1000.
//! 2. **Zero cost.** `#[repr(transparent)]` wrappers; every method is a
//!    trivial delegation the optimizer erases.
//! 3. **No overflow class.** The wrapped representation is `f64`, which
//!    saturates to `±inf` instead of wrapping or panicking, so the
//!    accounting sums cannot invoke integer-overflow UB regardless of
//!    stream length. (Counts remain `u64` with saturating ops; see
//!    [`crate::report::OpSummary`].)
//!
//! Serialization note: the workspace's serde derives are no-op shims (the
//! build is offline); all real JSON is hand-rolled. The hand-rolled
//! writers call [`Nanos::ns`] / [`Picojoules::pj`] / [`Nanojoules::nj`]
//! and format the raw `f64` exactly as before, so committed baselines
//! such as `results/BENCH_07.json` stay byte-compatible.

use serde::{Deserialize, Serialize};

macro_rules! unit_newtype {
    (
        $(#[$meta:meta])*
        $name:ident, $raw_getter:ident, $from_ctor:ident, $unit_str:literal
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The additive identity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw magnitude expressed in this unit.
            #[inline]
            pub const fn $from_ctor(raw: f64) -> Self {
                Self(raw)
            }

            /// Returns the raw magnitude in this unit.
            ///
            /// This is the *only* door back to untyped floats; call sites
            /// mark exactly where a quantity leaves the typed accounting
            /// (formatting, telemetry, or an explicit unit conversion).
            #[inline]
            pub const fn $raw_getter(self) -> f64 {
                self.0
            }

            /// Elementwise maximum, preserving `f64::max` NaN semantics.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Elementwise minimum, preserving `f64::min` NaN semantics.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// True when the magnitude is finite (not NaN or ±inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total ordering on the raw bits (`f64::total_cmp`), for
            /// sorting modeled quantities deterministically.
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        /// Scaling by a dimensionless count or ratio keeps the unit.
        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        /// `count * quantity` reads naturally at op-billing sites.
        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        /// Dividing by a dimensionless factor keeps the unit.
        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// In-place scaling by a dimensionless factor.
        impl core::ops::MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        /// In-place division by a dimensionless factor.
        impl core::ops::DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// The ratio of two like-united quantities is dimensionless.
        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            #[inline]
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            #[inline]
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                // Delegate (including precision/width flags) to the raw
                // f64 so typed quantities format exactly like the untyped
                // values they replaced.
                core::fmt::Display::fmt(&self.0, f)
            }
        }
    };
}

unit_newtype!(
    /// Modeled time in nanoseconds.
    Nanos,
    ns,
    from_ns,
    "ns"
);

unit_newtype!(
    /// Per-operation energy in picojoules (device-model granularity).
    Picojoules,
    pj,
    from_pj,
    "pJ"
);

unit_newtype!(
    /// Aggregated energy in nanojoules (report granularity).
    Nanojoules,
    nj,
    from_nj,
    "nJ"
);

impl Picojoules {
    /// Converts to nanojoules by the explicit ÷1000 the untyped
    /// accounting performed when rolling device-model costs into a
    /// report. This is the only pj→nj door, so the (inexact) rescale
    /// happens exactly once per aggregation, at the same point in the
    /// fold as before.
    #[inline]
    pub fn to_nanojoules(self) -> Nanojoules {
        Nanojoules(self.0 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_bit_identical_to_raw_f64() {
        let samples = [
            0.0,
            1.5,
            0.1,
            12.500,
            1e-9,
            1e12,
            core::f64::consts::PI,
            f64::MAX,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    (Nanos::from_ns(a) + Nanos::from_ns(b)).ns().to_bits(),
                    (a + b).to_bits()
                );
                assert_eq!(
                    (Nanos::from_ns(a) - Nanos::from_ns(b)).ns().to_bits(),
                    (a - b).to_bits()
                );
                assert_eq!((Nanos::from_ns(a) * b).ns().to_bits(), (a * b).to_bits());
                assert_eq!((a * Nanos::from_ns(b)).ns().to_bits(), (a * b).to_bits());
                assert_eq!((Nanos::from_ns(a) / b).ns().to_bits(), (a / b).to_bits());
                assert_eq!(
                    (Nanos::from_ns(a) / Nanos::from_ns(b)).to_bits(),
                    (a / b).to_bits()
                );
            }
        }
    }

    #[test]
    fn sum_matches_f64_fold_order() {
        let xs = [0.1, 0.2, 0.3, 1e9, 1e-9, 7.25];
        let raw: f64 = xs.iter().sum();
        let typed: Nanos = xs.iter().map(|&x| Nanos::from_ns(x)).sum();
        assert_eq!(typed.ns().to_bits(), raw.to_bits());
    }

    #[test]
    fn saturates_to_infinity_instead_of_wrapping() {
        let huge = Picojoules::from_pj(f64::MAX);
        let sum = huge + huge;
        assert!(!sum.is_finite());
        assert!(sum.pj().is_sign_positive());
    }

    #[test]
    fn pj_to_nj_matches_untyped_divide() {
        for &pj in &[0.0, 1.0, 1234.5, 0.007, 9.9e17] {
            assert_eq!(
                Picojoules::from_pj(pj).to_nanojoules().nj().to_bits(),
                (pj / 1000.0).to_bits()
            );
        }
    }

    #[test]
    fn display_matches_raw_f64_formatting() {
        assert_eq!(
            format!("{:.3}", Nanos::from_ns(12.5)),
            format!("{:.3}", 12.5)
        );
        assert_eq!(
            format!("{}", Nanojoules::from_nj(0.25)),
            format!("{}", 0.25)
        );
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Nanos::from_ns(1.0);
        let b = Nanos::from_ns(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.total_cmp(&b), core::cmp::Ordering::Less);
    }
}
