//! Two-stage load/compute pipeline timing model.
//!
//! GaaS-X (like GraphR) streams sub-shards from storage into the crossbars
//! while the previous shard computes; with double buffering the makespan of
//! `n` shards is
//!
//! ```text
//! load_0 + Σ_{i=1..n-1} max(load_i, compute_{i-1}) + compute_{n-1}
//! ```
//!
//! which this module evaluates from per-shard load and compute times.

/// Makespan of a two-stage pipeline with double buffering.
///
/// `loads[i]` and `computes[i]` are the stage times of shard `i` in any
/// consistent time unit.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// ```
/// use gaasx_sim::pipeline::pipelined_makespan;
///
/// // Perfect overlap: 3 shards, load 10, compute 10 -> 10 + 2*10 + 10.
/// assert_eq!(pipelined_makespan(&[10.0; 3], &[10.0; 3]), 40.0);
/// ```
pub fn pipelined_makespan(loads: &[f64], computes: &[f64]) -> f64 {
    assert_eq!(
        loads.len(),
        computes.len(),
        "pipeline stages must align per shard"
    );
    if loads.is_empty() {
        return 0.0;
    }
    let mut total = loads[0];
    for i in 1..loads.len() {
        total += loads[i].max(computes[i - 1]);
    }
    total + computes[computes.len() - 1]
}

/// Makespan with no overlap (single buffering): the serial sum.
pub fn serial_makespan(loads: &[f64], computes: &[f64]) -> f64 {
    assert_eq!(
        loads.len(),
        computes.len(),
        "pipeline stages must align per shard"
    );
    loads.iter().sum::<f64>() + computes.iter().sum::<f64>()
}

/// Incremental two-stage pipeline clock, for engines that discover shard
/// costs on the fly instead of collecting them up front.
#[derive(Debug, Clone, Default)]
pub struct PipelineClock {
    load_ready: f64,
    compute_done: f64,
}

impl PipelineClock {
    /// A clock at time zero with both stages idle.
    pub fn new() -> Self {
        PipelineClock::default()
    }

    /// Accounts one shard: its load starts as soon as the load unit is free
    /// and its compute starts once both the load finished and the compute
    /// unit freed up. Returns the shard's compute completion time.
    pub fn advance(&mut self, load_ns: f64, compute_ns: f64) -> f64 {
        let load_done = self.load_ready + load_ns;
        self.load_ready = load_done;
        let start = load_done.max(self.compute_done);
        self.compute_done = start + compute_ns;
        self.compute_done
    }

    /// Current makespan (completion time of the last computed shard).
    pub fn makespan(&self) -> f64 {
        self.compute_done.max(self.load_ready)
    }
}

/// Intra-block CAM-search / MAC-compute overlap clock.
///
/// GaaS-X pipelines the CAM search for the next vertex with the MAC
/// accumulation of the current one (paper §III-C): the search and compute
/// periphery are separate units, so a search may proceed while the
/// previous MAC burst drains. The one dependency is *forward*: a compute
/// op issued right after a search consumes that search's hit vector, so
/// it cannot start before the search finishes. Searches never wait for
/// computes.
///
/// Feed the block's op ledger in issue order — [`search`](PhasePipe::search)
/// for CAM-search ops, [`compute`](PhasePipe::compute) for everything else
/// — and [`makespan`](PhasePipe::makespan) yields the block's pipelined
/// compute time. Both calls return the op's modeled start time so a
/// timeline replay can place the op on its lane.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhasePipe {
    search_ready: f64,
    compute_done: f64,
    /// Whether the most recent op was a search — the next compute op then
    /// synchronizes on `search_ready` (it consumes the hit vector).
    last_was_search: bool,
}

impl PhasePipe {
    /// A clock at time zero with both units idle.
    pub fn new() -> Self {
        PhasePipe::default()
    }

    /// Accounts one CAM-search op on the search unit; returns its start.
    pub fn search(&mut self, ns: f64) -> f64 {
        let start = self.search_ready;
        self.search_ready = start + ns;
        self.last_was_search = true;
        start
    }

    /// Accounts one non-search op on the compute unit; returns its start.
    /// When the preceding op was a search, the compute first waits for the
    /// search unit (it consumes the freshly produced hit vector).
    pub fn compute(&mut self, ns: f64) -> f64 {
        if self.last_was_search {
            self.compute_done = self.compute_done.max(self.search_ready);
            self.last_was_search = false;
        }
        let start = self.compute_done;
        self.compute_done = start + ns;
        start
    }

    /// Pipelined makespan of the ops accounted so far.
    pub fn makespan(&self) -> f64 {
        self.compute_done.max(self.search_ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pipeline_is_zero() {
        assert_eq!(pipelined_makespan(&[], &[]), 0.0);
        assert_eq!(serial_makespan(&[], &[]), 0.0);
    }

    #[test]
    fn single_shard_is_serial() {
        assert_eq!(pipelined_makespan(&[5.0], &[7.0]), 12.0);
    }

    #[test]
    fn compute_bound_hides_loads() {
        // Loads of 1 hide entirely behind computes of 10 (after the first).
        let m = pipelined_makespan(&[1.0; 4], &[10.0; 4]);
        assert_eq!(m, 1.0 + 3.0 * 10.0 + 10.0);
    }

    #[test]
    fn load_bound_hides_computes() {
        let m = pipelined_makespan(&[10.0; 4], &[1.0; 4]);
        assert_eq!(m, 10.0 + 3.0 * 10.0 + 1.0);
    }

    #[test]
    fn pipeline_never_beats_critical_stage_or_exceeds_serial() {
        let loads = [3.0, 8.0, 2.0, 5.0];
        let computes = [6.0, 1.0, 9.0, 2.0];
        let p = pipelined_makespan(&loads, &computes);
        let s = serial_makespan(&loads, &computes);
        assert!(p <= s);
        assert!(p >= loads.iter().sum::<f64>().max(computes.iter().sum()));
    }

    #[test]
    fn clock_matches_batch_formula() {
        let loads = [3.0, 8.0, 2.0, 5.0];
        let computes = [6.0, 1.0, 9.0, 2.0];
        let mut clock = PipelineClock::new();
        for (&l, &c) in loads.iter().zip(&computes) {
            clock.advance(l, c);
        }
        assert!((clock.makespan() - pipelined_makespan(&loads, &computes)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        pipelined_makespan(&[1.0], &[]);
    }

    #[test]
    fn phase_pipe_overlaps_search_with_prior_compute() {
        // S(4) C(10) S(4) C(10): the second search runs during the first
        // MAC, so only the first search extends the makespan.
        let mut p = PhasePipe::new();
        assert_eq!(p.search(4.0), 0.0);
        assert_eq!(p.compute(10.0), 4.0);
        assert_eq!(p.search(4.0), 4.0); // overlapped with the MAC
        assert_eq!(p.compute(10.0), 14.0);
        assert_eq!(p.makespan(), 24.0);
        // Serial would be 28: the pipeline hid one 4 ns search.
    }

    #[test]
    fn phase_pipe_search_bound_blocks_compute() {
        // Long searches dominate: each compute waits for its hit vector.
        let mut p = PhasePipe::new();
        p.search(10.0);
        assert_eq!(p.compute(1.0), 10.0);
        p.search(10.0);
        assert_eq!(p.compute(1.0), 20.0);
        assert_eq!(p.makespan(), 21.0);
    }

    #[test]
    fn phase_pipe_consecutive_ops_serialize_within_a_unit() {
        // Voting searches (3 in a row) serialize on the search unit; the
        // following compute waits for all three. Consecutive computes
        // serialize on the compute unit without re-syncing.
        let mut p = PhasePipe::new();
        p.search(4.0);
        p.search(4.0);
        p.search(4.0);
        assert_eq!(p.compute(5.0), 12.0);
        assert_eq!(p.compute(5.0), 17.0);
        assert_eq!(p.makespan(), 22.0);
    }

    #[test]
    fn phase_pipe_without_searches_is_serial() {
        let mut p = PhasePipe::new();
        p.compute(3.0);
        p.compute(7.0);
        assert_eq!(p.makespan(), 10.0);
        // And search-only blocks are serial on the search unit.
        let mut q = PhasePipe::new();
        q.search(2.0);
        q.search(2.0);
        assert_eq!(q.makespan(), 4.0);
    }

    #[test]
    fn phase_pipe_never_beats_critical_unit_or_exceeds_serial() {
        let ops = [
            (true, 4.0),
            (false, 9.0),
            (true, 2.0),
            (true, 3.0),
            (false, 1.0),
            (false, 6.0),
        ];
        let mut p = PhasePipe::new();
        let mut serial = 0.0;
        let (mut s_total, mut c_total) = (0.0, 0.0);
        for &(is_search, ns) in &ops {
            if is_search {
                p.search(ns);
                s_total += ns;
            } else {
                p.compute(ns);
                c_total += ns;
            }
            serial += ns;
        }
        assert!(p.makespan() <= serial);
        assert!(p.makespan() >= s_total.max(c_total));
    }
}
