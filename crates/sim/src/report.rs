//! Canonical run reports produced by every engine (GaaS-X and baselines).

use serde::{Deserialize, Serialize};

use crate::energy::EnergyBreakdown;
use crate::histogram::Histogram;
use crate::obs::PhaseBreakdown;
use crate::units::{Nanojoules, Nanos};

/// Operation counts of one run, summed over all hardware units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSummary {
    /// Analog MAC bursts.
    pub mac_ops: u64,
    /// CAM searches.
    pub cam_searches: u64,
    /// ReRAM cells programmed.
    pub cells_written: u64,
    /// Row-programming bursts.
    pub row_writes: u64,
    /// Write-verify read-backs issued by the fault-recovery layer (zero for
    /// engines without write-verify, or when it is disabled).
    #[serde(default)]
    pub verify_reads: u64,
    /// Scalar SFU operations.
    pub sfu_ops: u64,
    /// On-chip buffer word accesses.
    pub buffer_accesses: u64,
    /// Useful multiply-accumulate *work items* (edge computations); for
    /// dense engines this includes the redundant zero-cell computations,
    /// which is exactly the Fig 5 comparison.
    pub compute_items: u64,
}

impl OpSummary {
    /// An all-zero summary.
    #[must_use]
    pub fn new() -> Self {
        OpSummary::default()
    }

    /// Adds another summary into this one.
    pub fn merge(&mut self, other: &OpSummary) {
        self.mac_ops = self.mac_ops.saturating_add(other.mac_ops);
        self.cam_searches = self.cam_searches.saturating_add(other.cam_searches);
        self.cells_written = self.cells_written.saturating_add(other.cells_written);
        self.row_writes = self.row_writes.saturating_add(other.row_writes);
        self.verify_reads = self.verify_reads.saturating_add(other.verify_reads);
        self.sfu_ops = self.sfu_ops.saturating_add(other.sfu_ops);
        self.buffer_accesses = self.buffer_accesses.saturating_add(other.buffer_accesses);
        self.compute_items = self.compute_items.saturating_add(other.compute_items);
    }
}

impl std::ops::Add for OpSummary {
    type Output = OpSummary;

    fn add(mut self, rhs: OpSummary) -> OpSummary {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for OpSummary {
    fn add_assign(&mut self, rhs: OpSummary) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for OpSummary {
    fn sum<I: Iterator<Item = OpSummary>>(iter: I) -> OpSummary {
        iter.fold(OpSummary::new(), |acc, o| acc + o)
    }
}

impl<'a> std::iter::Sum<&'a OpSummary> for OpSummary {
    fn sum<I: Iterator<Item = &'a OpSummary>>(iter: I) -> OpSummary {
        iter.copied().sum()
    }
}

/// Fault-recovery activity of one run: what the engine *detected* and how it
/// recovered, as opposed to what the device layer injected.
///
/// All-zero (the default) for fault-free runs and for engines without a
/// recovery layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Write-verify read-backs issued (mirrors `OpSummary::verify_reads`).
    pub verify_reads: u64,
    /// Verify mismatches detected (each is a corrupted CAM entry or MAC row
    /// caught before it could poison results).
    pub faults_detected: u64,
    /// Row re-programming attempts after a verify mismatch.
    pub write_retries: u64,
    /// Rows retired to spares after exhausting their retry budget.
    pub row_remaps: u64,
    /// CAM searches that were issued as majority-of-three double-checks.
    pub cam_double_checks: u64,
}

impl FaultReport {
    /// `true` when no recovery activity was recorded.
    pub fn is_zero(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Adds another report into this one.
    pub fn merge(&mut self, other: &FaultReport) {
        self.verify_reads = self.verify_reads.saturating_add(other.verify_reads);
        self.faults_detected = self.faults_detected.saturating_add(other.faults_detected);
        self.write_retries = self.write_retries.saturating_add(other.write_retries);
        self.row_remaps = self.row_remaps.saturating_add(other.row_remaps);
        self.cam_double_checks = self
            .cam_double_checks
            .saturating_add(other.cam_double_checks);
    }
}

/// The result record of one algorithm execution on one engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Engine name ("gaasx", "graphr", "cpu-gridgraph", ...).
    pub engine: String,
    /// Algorithm name ("pagerank", "sssp", ...).
    pub algorithm: String,
    /// Workload label (dataset abbreviation).
    pub workload: String,
    /// Iterations / supersteps executed.
    pub iterations: u32,
    /// Modeled (or measured) execution time in nanoseconds.
    pub elapsed_ns: Nanos,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Operation counts.
    pub ops: OpSummary,
    /// Rows activated per MAC op (Fig 13); empty for non-crossbar engines.
    pub rows_per_mac: Histogram,
    /// Edges in the processed workload (for throughput derivation).
    pub num_edges: u64,
    /// Per-phase share of the run. Engines that attribute their makespan
    /// populate this at `finish`; the `sched_ns` entries sum to
    /// `elapsed_ns`. Empty for engines that predate the tracing layer.
    #[serde(default)]
    pub phases: Vec<PhaseBreakdown>,
    /// Fault-recovery activity (all-zero for fault-free runs and engines
    /// without a recovery layer).
    #[serde(default)]
    pub faults: FaultReport,
    /// Per-bank utilization derived from the occupancy timeline, present
    /// only when the run recorded one (an interval-observing sink was
    /// attached — see [`crate::timeline`]). Its `phase_busy_ns` conserves
    /// the `phases` busy attribution bit-exactly.
    #[serde(default)]
    pub utilization: Option<crate::timeline::UtilizationReport>,
}

impl RunReport {
    /// Creates an empty report shell for an engine/algorithm/workload.
    pub fn new(
        engine: impl Into<String>,
        algorithm: impl Into<String>,
        workload: impl Into<String>,
    ) -> Self {
        RunReport {
            engine: engine.into(),
            algorithm: algorithm.into(),
            workload: workload.into(),
            iterations: 0,
            elapsed_ns: Nanos::ZERO,
            energy: EnergyBreakdown::new(),
            ops: OpSummary::default(),
            rows_per_mac: Histogram::new(16),
            num_edges: 0,
            phases: Vec::new(),
            faults: FaultReport::default(),
            utilization: None,
        }
    }

    /// The per-phase entry for `phase`, if the engine recorded one.
    pub fn phase(&self, phase: crate::obs::Phase) -> Option<&PhaseBreakdown> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Sum of the per-phase makespan shares (equals `elapsed_ns` when the
    /// engine attributed its schedule; 0 when `phases` is empty).
    pub fn phases_total_sched_ns(&self) -> Nanos {
        self.phases.iter().map(|p| p.sched_ns).sum()
    }

    /// Execution time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.elapsed_ns.ns() / 1e6
    }

    /// Execution time in seconds.
    pub fn time_s(&self) -> f64 {
        self.elapsed_ns.ns() / 1e9
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Edge throughput in edges/second over the whole run (all iterations).
    pub fn edges_per_second(&self) -> f64 {
        if self.elapsed_ns == Nanos::ZERO {
            return 0.0;
        }
        self.num_edges.saturating_mul(self.iterations as u64) as f64 / self.time_s()
    }

    /// How many times faster this run is than `other`
    /// (`other.time / self.time`).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        if self.elapsed_ns == Nanos::ZERO {
            return f64::INFINITY;
        }
        other.elapsed_ns / self.elapsed_ns
    }

    /// How many times less energy this run used than `other`.
    pub fn energy_savings_over(&self, other: &RunReport) -> f64 {
        let own = self.energy.total_nj();
        if own == Nanojoules::ZERO {
            return f64::INFINITY;
        }
        other.energy.total_nj() / own
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ns: f64, mac_nj: f64) -> RunReport {
        let mut r = RunReport::new("e", "a", "w");
        r.elapsed_ns = Nanos::from_ns(ns);
        r.energy.mac_nj = Nanojoules::from_nj(mac_nj);
        r.iterations = 1;
        r.num_edges = 1000;
        r
    }

    #[test]
    fn conversions() {
        let r = report(2e6, 3e6);
        assert!((r.time_ms() - 2.0).abs() < 1e-12);
        assert!((r.energy_mj() - 3.0).abs() < 1e-12);
        assert!((r.edges_per_second() - 500_000.0).abs() < 1e-6);
    }

    #[test]
    fn comparisons() {
        let fast = report(1e6, 1e6);
        let slow = report(7e6, 22e6);
        assert!((fast.speedup_over(&slow) - 7.0).abs() < 1e-12);
        assert!((fast.energy_savings_over(&slow) - 22.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_is_infinite_speedup() {
        let z = report(0.0, 0.0);
        let other = report(1.0, 1.0);
        assert!(z.speedup_over(&other).is_infinite());
        assert_eq!(z.edges_per_second(), 0.0);
    }

    #[test]
    fn op_summary_merge() {
        let mut a = OpSummary {
            mac_ops: 1,
            compute_items: 10,
            ..Default::default()
        };
        a.merge(&OpSummary {
            mac_ops: 2,
            sfu_ops: 5,
            ..Default::default()
        });
        assert_eq!(a.mac_ops, 3);
        assert_eq!(a.sfu_ops, 5);
        assert_eq!(a.compute_items, 10);
    }

    #[test]
    fn op_summary_sum_and_add_assign() {
        let unit = OpSummary {
            mac_ops: 2,
            buffer_accesses: 3,
            ..OpSummary::new()
        };
        let total: OpSummary = [unit, unit].iter().sum();
        assert_eq!(total.mac_ops, 4);
        assert_eq!(total.buffer_accesses, 6);
        let mut acc = OpSummary::new();
        acc += unit;
        acc += total;
        assert_eq!(acc.mac_ops, 6);
        let empty: OpSummary = std::iter::empty::<OpSummary>().sum();
        assert_eq!(empty, OpSummary::new());
    }

    #[test]
    fn phase_lookup_and_sched_total() {
        use crate::obs::{Phase, PhaseBreakdown};
        let mut r = report(10.0, 0.0);
        assert_eq!(r.phase(Phase::Sfu), None);
        assert_eq!(r.phases_total_sched_ns(), Nanos::ZERO);
        r.phases = vec![
            PhaseBreakdown {
                phase: Phase::LoadBlock,
                sched_ns: Nanos::from_ns(6.0),
                busy_ns: Nanos::from_ns(12.0),
                count: 2,
            },
            PhaseBreakdown {
                phase: Phase::Sfu,
                sched_ns: Nanos::from_ns(4.0),
                busy_ns: Nanos::from_ns(4.0),
                count: 8,
            },
        ];
        assert_eq!(r.phase(Phase::Sfu).unwrap().count, 8);
        assert!((r.phases_total_sched_ns().ns() - 10.0).abs() < 1e-12);
    }
}
