//! Per-component energy accounting.

use serde::{Deserialize, Serialize};

use crate::units::Nanojoules;

/// Energy spent by an execution, split by architectural component, in
/// nanojoules.
///
/// Breakdown categories follow the paper's architecture (Fig 6): crossbar
/// compute (MAC + CAM), cell programming, special-function units, on-chip
/// buffers, and always-on static power integrated over the runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Analog MAC operations.
    pub mac_nj: Nanojoules,
    /// CAM searches.
    pub cam_nj: Nanojoules,
    /// ReRAM cell programming (data loading).
    pub write_nj: Nanojoules,
    /// Scalar SFU operations.
    pub sfu_nj: Nanojoules,
    /// On-chip SRAM buffer accesses.
    pub buffer_nj: Nanojoules,
    /// Static power × elapsed time.
    pub static_nj: Nanojoules,
}

impl EnergyBreakdown {
    /// An all-zero breakdown.
    #[must_use]
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> Nanojoules {
        self.mac_nj + self.cam_nj + self.write_nj + self.sfu_nj + self.buffer_nj + self.static_nj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj().nj() / 1e6
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.mac_nj += other.mac_nj;
        self.cam_nj += other.cam_nj;
        self.write_nj += other.write_nj;
        self.sfu_nj += other.sfu_nj;
        self.buffer_nj += other.buffer_nj;
        self.static_nj += other.static_nj;
    }

    /// Fraction of total energy attributed to cell programming — the
    /// quantity GaaS-X's sparse mapping attacks (paper Fig 5).
    pub fn write_fraction(&self) -> f64 {
        let total = self.total_nj();
        if total == Nanojoules::ZERO {
            0.0
        } else {
            self.write_nj / total
        }
    }

    /// `(label, value_nj)` pairs for report rendering.
    pub fn components(&self) -> [(&'static str, Nanojoules); 6] {
        [
            ("mac", self.mac_nj),
            ("cam", self.cam_nj),
            ("write", self.write_nj),
            ("sfu", self.sfu_nj),
            ("buffer", self.buffer_nj),
            ("static", self.static_nj),
        ]
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(mut self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::new(), |acc, e| acc + e)
    }
}

impl<'a> std::iter::Sum<&'a EnergyBreakdown> for EnergyBreakdown {
    fn sum<I: Iterator<Item = &'a EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nj(raw: f64) -> Nanojoules {
        Nanojoules::from_nj(raw)
    }

    #[test]
    fn totals_and_merge() {
        let mut a = EnergyBreakdown {
            mac_nj: nj(1.0),
            cam_nj: nj(2.0),
            write_nj: nj(3.0),
            sfu_nj: nj(4.0),
            buffer_nj: nj(5.0),
            static_nj: nj(6.0),
        };
        assert_eq!(a.total_nj(), nj(21.0));
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_nj(), nj(42.0));
        assert_eq!((b + b).total_nj(), nj(42.0));
    }

    #[test]
    fn sum_and_add_assign() {
        let unit = EnergyBreakdown {
            mac_nj: nj(1.0),
            static_nj: nj(0.5),
            ..Default::default()
        };
        let total: EnergyBreakdown = [unit, unit, unit].iter().sum();
        assert!((total.total_nj().nj() - 4.5).abs() < 1e-12);
        let mut acc = EnergyBreakdown::new();
        acc += unit;
        acc += unit;
        assert_eq!(acc, unit + unit);
        let empty: EnergyBreakdown = std::iter::empty::<EnergyBreakdown>().sum();
        assert_eq!(empty, EnergyBreakdown::new());
    }

    #[test]
    fn write_fraction() {
        let e = EnergyBreakdown {
            write_nj: nj(1.0),
            mac_nj: nj(3.0),
            ..Default::default()
        };
        assert!((e.write_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::new().write_fraction(), 0.0);
    }

    #[test]
    fn unit_conversion() {
        let e = EnergyBreakdown {
            mac_nj: nj(2.5e6),
            ..Default::default()
        };
        assert!((e.total_mj() - 2.5).abs() < 1e-12);
    }
}
