//! Integer-bucket histograms with CDF extraction (paper Fig 13).

use serde::{Deserialize, Serialize};

/// A histogram over 1-based integer buckets.
///
/// Bucket `i` (0-indexed) counts occurrences of value `i + 1`; this mirrors
/// the "number of rows accumulated per MAC operation" histogram of Fig 13,
/// where the x-axis runs 1..=16.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram with `buckets` buckets.
    pub fn new(buckets: usize) -> Self {
        Histogram {
            counts: vec![0; buckets],
        }
    }

    /// Wraps raw bucket counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Histogram { counts }
    }

    /// Records one occurrence of `value` (1-based); values beyond the last
    /// bucket clamp into it.
    ///
    /// # Panics
    ///
    /// Panics if the histogram has no buckets or `value == 0`.
    pub fn record(&mut self, value: usize) {
        assert!(!self.counts.is_empty(), "histogram has no buckets");
        assert!(value >= 1, "histogram values are 1-based");
        let idx = (value - 1).min(self.counts.len() - 1);
        self.counts[idx] = self.counts[idx].saturating_add(1);
    }

    /// The raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded occurrences.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Probability mass per bucket (empty histogram gives zeros).
    pub fn pmf(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Cumulative distribution per bucket.
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.pmf()
            .into_iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect()
    }

    /// Fraction of mass at or below `value` (1-based).
    pub fn fraction_at_most(&self, value: usize) -> f64 {
        if value == 0 || self.counts.is_empty() {
            return 0.0;
        }
        let idx = (value - 1).min(self.counts.len() - 1);
        self.cdf()[idx]
    }

    /// Merges another histogram into this one, growing as needed.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] = self.counts[i].saturating_add(c);
        }
    }

    /// Smallest 1-based value whose cumulative count covers quantile `q`
    /// (clamped to `[0, 1]`), or 0 for an empty histogram. `q = 0.0`
    /// returns the smallest recorded value, `q = 1.0` the largest.
    pub fn value_at_quantile(&self, q: f64) -> usize {
        let total = self.total();
        if total == 0 || self.counts.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return i + 1;
            }
        }
        self.counts.len()
    }

    /// Mean recorded value (1-based buckets), or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_cdf() {
        let mut h = Histogram::new(4);
        for v in [1, 1, 1, 2, 4] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[3, 1, 0, 1]);
        let cdf = h.cdf();
        assert!((cdf[0] - 0.6).abs() < 1e-12);
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        assert!((h.fraction_at_most(2) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn clamps_overflow_values() {
        let mut h = Histogram::new(2);
        h.record(100);
        assert_eq!(h.counts(), &[0, 1]);
    }

    #[test]
    fn merge_grows() {
        let mut a = Histogram::new(2);
        a.record(1);
        let mut b = Histogram::new(4);
        b.record(4);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 0, 0, 1]);
    }

    #[test]
    fn mean_of_buckets() {
        let mut h = Histogram::new(4);
        h.record(1);
        h.record(3);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(Histogram::new(3).mean(), 0.0);
    }

    #[test]
    fn empty_pmf_is_zero() {
        assert_eq!(Histogram::new(3).pmf(), vec![0.0; 3]);
    }

    #[test]
    fn quantiles_walk_the_cdf() {
        let mut h = Histogram::new(8);
        for v in [1, 1, 1, 1, 2, 2, 3, 5, 5, 8] {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.0), 1);
        assert_eq!(h.value_at_quantile(0.4), 1);
        assert_eq!(h.value_at_quantile(0.5), 2);
        assert_eq!(h.value_at_quantile(0.7), 3);
        assert_eq!(h.value_at_quantile(0.9), 5);
        assert_eq!(h.value_at_quantile(1.0), 8);
        // Out-of-range quantiles clamp; empty histograms yield 0.
        assert_eq!(h.value_at_quantile(2.0), 8);
        assert_eq!(h.value_at_quantile(-1.0), 1);
        assert_eq!(Histogram::new(4).value_at_quantile(0.5), 0);
    }
}
