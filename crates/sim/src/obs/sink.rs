//! Pluggable span/metric sinks: discard, in-memory rollup, or JSONL.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use super::span::{counter_to_json, gauge_to_json, span_to_json};
use super::{BankBreakdown, Phase, PhaseBreakdown, SpanEvent};
use crate::timeline::{interval_to_json, TimelineInterval};
use crate::units::Nanos;

/// Receives every finished span (and, at flush, the metric snapshot).
///
/// Implementations must be cheap and thread-safe: engines may emit spans
/// from parallel sections (the CPU baseline does).
pub trait Sink: Send + Sync + fmt::Debug {
    /// Called once per finished span.
    fn on_span(&self, event: &SpanEvent);

    /// Called per counter at [`super::Tracer::flush`] time.
    fn on_counter(&self, _name: &str, _value: u64) {}

    /// Called per gauge at [`super::Tracer::flush`] time.
    fn on_gauge(&self, _name: &str, _value: f64) {}

    /// Called once per bank-occupancy interval when an engine emits its
    /// timeline at `finish` time (see [`crate::timeline`]).
    fn on_interval(&self, _interval: &TimelineInterval) {}

    /// Called at the end of a run; flush buffered output.
    fn flush(&self) {}

    /// `true` when this sink provably ignores every span. A tracer whose
    /// sinks are all null skips span construction entirely, so `on_span`
    /// is never reached — metrics still flow.
    fn observes_spans(&self) -> bool {
        true
    }

    /// `true` when this sink consumes timeline intervals. Engines only
    /// keep the per-operation ledger that timeline construction needs
    /// when some attached sink reports `true`, so interval-blind runs
    /// pay nothing.
    fn observes_intervals(&self) -> bool {
        false
    }
}

/// Discards everything. Attached when a caller wants the tracer *wired*
/// (metrics registry live) but not recording spans; the tracer detects it
/// via [`Sink::observes_spans`] and skips span emission up front, which is
/// what keeps the criterion bench `obs_overhead` within a few percent of
/// an uninstrumented run.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn on_span(&self, _event: &SpanEvent) {}

    fn observes_spans(&self) -> bool {
        false
    }
}

/// Atomic f64 accumulator (CAS over the bit pattern).
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct PhaseAgg {
    busy_ns: AtomicF64,
    count: AtomicU64,
}

/// In-memory per-phase and per-bank rollups.
///
/// Per-phase totals are lock-free (atomics); per-bank totals take a
/// short mutex because the bank set is discovered dynamically.
#[derive(Debug, Default)]
pub struct AggregateSink {
    phases: [PhaseAgg; Phase::ALL.len()],
    banks: Mutex<Vec<(u32, f64, u64)>>,
}

impl AggregateSink {
    /// A fresh, empty rollup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-phase totals: `busy_ns` is the plain sum of span durations in
    /// that phase (nesting does not discount children), `count` the
    /// number of spans. `sched_ns` is zero — only an engine's `finish`
    /// can attribute makespan shares; see
    /// [`super::PhaseBreakdown::sched_ns`]. Phases with no spans are
    /// omitted.
    pub fn phase_rollup(&self) -> Vec<PhaseBreakdown> {
        Phase::ALL
            .into_iter()
            .filter_map(|phase| {
                let agg = &self.phases[phase.index()];
                let count = agg.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                Some(PhaseBreakdown {
                    phase,
                    sched_ns: Nanos::ZERO,
                    busy_ns: Nanos::from_ns(agg.busy_ns.get()),
                    count,
                })
            })
            .collect()
    }

    /// Per-bank totals over all spans carrying a bank id, sorted by bank.
    pub fn bank_rollup(&self) -> Vec<BankBreakdown> {
        let mut banks: Vec<BankBreakdown> = self
            .banks
            .lock()
            .iter()
            .map(|&(bank, busy_ns, count)| BankBreakdown {
                bank,
                busy_ns: Nanos::from_ns(busy_ns),
                count,
            })
            .collect();
        banks.sort_by_key(|b| b.bank);
        banks
    }

    /// Total busy time across every phase.
    pub fn total_busy_ns(&self) -> Nanos {
        Nanos::from_ns(self.phases.iter().map(|p| p.busy_ns.get()).sum())
    }
}

impl Sink for AggregateSink {
    fn on_span(&self, event: &SpanEvent) {
        let agg = &self.phases[event.phase.index()];
        agg.busy_ns.add(event.dur_ns);
        agg.count.fetch_add(1, Ordering::Relaxed);
        if let Some(bank) = event.bank {
            let mut banks = self.banks.lock();
            match banks.iter_mut().find(|(b, _, _)| *b == bank) {
                Some(entry) => {
                    entry.1 += event.dur_ns;
                    entry.2 += 1;
                }
                None => banks.push((bank, event.dur_ns, 1)),
            }
        }
    }
}

/// Buffers every span in memory, in arrival order.
///
/// The sharded execution layer attaches one `MemorySink` per worker
/// engine: workers record spans on their private functional time axes,
/// and at merge time the primary engine drains each buffer (worker order,
/// so the merged stream is deterministic) and replays the events into its
/// own sinks via [`super::Tracer::replay_span`].
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<SpanEvent>>,
}

impl MemorySink {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the buffered spans in arrival order.
    pub fn take_events(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Sink for MemorySink {
    fn on_span(&self, event: &SpanEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Streams one JSON object per event to a writer (JSON Lines).
///
/// The format is hand-rolled (the workspace's serde is an offline shim —
/// see `shims/README.md`): `span`, `counter`, `gauge`, and `interval`
/// records as emitted by `span_to_json` and friends. Decoded by the
/// `trace_summary` binary in `gaasx-bench`.
///
/// A full disk mid-trace must not abort a simulation, so write errors do
/// not propagate from the `Sink` callbacks; instead the first error is
/// retained ([`JsonlSink::take_error`]) and lost lines are counted
/// ([`JsonlSink::dropped_lines`]). Dropping the sink flushes the buffered
/// writer, so a trace file is complete without an explicit
/// `Tracer::flush`; if events were lost, the drop prints a warning to
/// stderr rather than discarding them silently.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    io_error: Mutex<Option<io::Error>>,
    dropped: AtomicU64,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Streams to an arbitrary writer.
    pub fn to_writer(writer: impl Write + Send + 'static) -> Self {
        JsonlSink {
            out: Mutex::new(Box::new(writer)),
            io_error: Mutex::new(None),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) a trace file with a buffered writer.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::to_writer(BufWriter::new(File::create(path)?)))
    }

    /// Takes the first I/O error hit while writing or flushing, if any.
    pub fn take_error(&self) -> Option<io::Error> {
        self.io_error.lock().take()
    }

    /// Number of event lines lost to write errors so far.
    pub fn dropped_lines(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn record_error(&self, err: io::Error) {
        let mut slot = self.io_error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock();
        if let Err(err) = writeln!(out, "{line}") {
            // Keep simulating on a full disk; surface the loss instead
            // of aborting (or worse, hiding it).
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.record_error(err);
        }
    }
}

impl Sink for JsonlSink {
    fn on_span(&self, event: &SpanEvent) {
        self.write_line(&span_to_json(event));
    }

    fn on_counter(&self, name: &str, value: u64) {
        self.write_line(&counter_to_json(name, value));
    }

    fn on_gauge(&self, name: &str, value: f64) {
        self.write_line(&gauge_to_json(name, value));
    }

    fn on_interval(&self, interval: &TimelineInterval) {
        self.write_line(&interval_to_json(interval));
    }

    fn observes_intervals(&self) -> bool {
        true
    }

    fn flush(&self) {
        if let Err(err) = self.out.lock().flush() {
            self.record_error(err);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
        let dropped = self.dropped.load(Ordering::Relaxed);
        if let Some(err) = self.io_error.lock().as_ref() {
            eprintln!("warning: JSONL trace incomplete ({dropped} line(s) dropped): {err}");
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::super::Tracer;
    use super::*;

    #[test]
    fn aggregate_rolls_up_phases_and_banks() {
        let agg = Arc::new(AggregateSink::new());
        let t = Tracer::with_sink(agg.clone());
        t.emit(Phase::CamSearch, 0.0, 2.0);
        t.emit(Phase::CamSearch, 2.0, 3.0);
        t.span(Phase::Dispatch, 0.0).bank(1).end(4.0);
        t.span(Phase::Dispatch, 4.0).bank(1).end(6.0);
        t.span(Phase::Dispatch, 0.0).bank(7).end(5.0);

        let phases = agg.phase_rollup();
        assert_eq!(phases.len(), 2);
        let cam = phases.iter().find(|p| p.phase == Phase::CamSearch).unwrap();
        assert!((cam.busy_ns.ns() - 5.0).abs() < 1e-12);
        assert_eq!(cam.count, 2);

        let banks = agg.bank_rollup();
        assert_eq!(banks.len(), 2);
        assert_eq!(banks[0].bank, 1);
        assert!((banks[0].busy_ns.ns() - 6.0).abs() < 1e-12);
        assert_eq!(banks[0].count, 2);
        assert_eq!(banks[1].bank, 7);
        assert!((agg.total_busy_ns().ns() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sink = Arc::new(JsonlSink::to_writer(SharedBuf(buf.clone())));
        let t = Tracer::with_sink(sink);
        t.emit(Phase::LoadBlock, 0.0, 8.0);
        t.span(Phase::MacGather, 8.0)
            .bank(0)
            .attr("rows", 4u64)
            .end(9.0);
        t.counter_add("mac_ops", 1);
        t.flush();

        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"phase\":\"load_block\""));
        assert!(lines[1].contains("\"bank\":0"));
        assert!(lines[1].contains("\"rows\":4"));
        assert!(lines[2].contains("\"type\":\"counter\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn memory_sink_buffers_and_drains_in_order() {
        let mem = Arc::new(MemorySink::new());
        let t = Tracer::with_sink(mem.clone());
        t.emit(Phase::CamSearch, 0.0, 4.0);
        t.span(Phase::MacGather, 4.0).bank(2).end(34.0);
        assert_eq!(mem.len(), 2);
        let events = mem.take_events();
        assert_eq!(events[0].phase, Phase::CamSearch);
        assert_eq!(events[1].phase, Phase::MacGather);
        assert_eq!(events[1].bank, Some(2));
        assert!(mem.is_empty());
        // Replaying into another tracer preserves phase/timing payloads.
        let agg = Arc::new(AggregateSink::new());
        let target = Tracer::with_sink(agg.clone());
        for e in &events {
            target.replay_span(e);
        }
        assert!((agg.total_busy_ns().ns() - 34.0).abs() < 1e-12);
        assert_eq!(agg.bank_rollup().len(), 1);
    }

    #[test]
    fn dropped_jsonl_sink_leaves_a_complete_parseable_file() {
        let path = std::env::temp_dir().join(format!(
            "gaasx_jsonl_drop_flush_{}.jsonl",
            std::process::id()
        ));
        {
            let sink = Arc::new(JsonlSink::create(&path).unwrap());
            let t = Tracer::with_sink(sink);
            for i in 0..64 {
                t.emit(Phase::CamSearch, i as f64, 4.0);
            }
            t.counter_add("cam_searches", 64);
            // No Tracer::flush: the trailing events sit in the BufWriter
            // and only the sink's Drop can save them.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 64);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors_and_counts_losses() {
        struct FailingWriter;
        impl std::io::Write for FailingWriter {
            fn write(&mut self, _data: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sink = Arc::new(JsonlSink::to_writer(FailingWriter));
        let t = Tracer::with_sink(sink.clone());
        for i in 0..5 {
            t.emit(Phase::Sfu, i as f64, 1.0);
        }
        assert_eq!(sink.dropped_lines(), 5);
        let err = sink.take_error().expect("first error is retained");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(sink.take_error().is_none(), "take_error drains the slot");
    }

    #[test]
    fn jsonl_sink_streams_intervals() {
        use crate::timeline::{TimelineInterval, COMPUTE_LANE};
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = Arc::new(JsonlSink::to_writer(SharedBuf(buf.clone())));
        assert!(sink.observes_intervals());
        let t = Tracer::with_sink(sink);
        t.emit_interval(&TimelineInterval {
            bank: 1,
            lane: COMPUTE_LANE,
            phase: Phase::MacGather,
            start_ns: Nanos::ZERO,
            dur_ns: Nanos::from_ns(30.0),
            block: Some(0),
        });
        t.flush();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert!(text.contains("\"type\":\"interval\""));
        assert!(text.contains("\"phase\":\"mac_gather\""));
    }

    #[test]
    fn null_sink_accepts_everything() {
        let t = Tracer::with_sink(Arc::new(NullSink));
        t.emit(Phase::Init, 0.0, 1.0);
        t.counter_add("mac_ops", 2);
        t.flush();
        assert!(t.enabled());
        assert_eq!(t.metrics().unwrap().counter("mac_ops").get(), 2);
    }
}
