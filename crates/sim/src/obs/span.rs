//! Span events and the open-span handle.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use super::{Phase, TracerInner};

/// A typed attribute value attached to a span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Unsigned integer attribute (ids, counts).
    U64(u64),
    /// Float attribute (ratios, ns).
    F64(f64),
    /// Static string attribute (labels).
    Str(&'static str),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

/// One finished span on an engine's modeled time axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Monotone per-tracer sequence number.
    pub seq: u64,
    /// Sequence number of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Execution phase.
    pub phase: Phase,
    /// Start time on the modeled (or wall-clock) axis, ns.
    pub start_ns: f64,
    /// Duration, ns.
    pub dur_ns: f64,
    /// Bank/PE id, when the operation is bound to one.
    pub bank: Option<u32>,
    /// Free-form key/value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// An open span returned by [`super::Tracer::span`].
///
/// Chain [`attr`](SpanHandle::attr)/[`bank`](SpanHandle::bank) while the
/// operation runs, then call [`end`](SpanHandle::end) with the end time.
/// Dropping the handle without `end` discards the span (and pops it from
/// the nesting stack).
#[derive(Debug)]
pub struct SpanHandle {
    state: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    inner: Arc<TracerInner>,
    event: SpanEvent,
}

impl SpanHandle {
    pub(super) fn disabled() -> Self {
        SpanHandle { state: None }
    }

    pub(super) fn open(
        inner: Arc<TracerInner>,
        phase: Phase,
        start_ns: f64,
        seq: u64,
        parent: Option<u64>,
    ) -> Self {
        SpanHandle {
            state: Some(OpenSpan {
                inner,
                event: SpanEvent {
                    seq,
                    parent,
                    phase,
                    start_ns,
                    dur_ns: 0.0,
                    bank: None,
                    attrs: Vec::new(),
                },
            }),
        }
    }

    /// Attaches an attribute (no-op when the tracer is disabled).
    #[must_use]
    pub fn attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> Self {
        if let Some(open) = &mut self.state {
            open.event.attrs.push((key, value.into()));
        }
        self
    }

    /// Binds the span to a bank/PE id.
    #[must_use]
    pub fn bank(mut self, bank: u32) -> Self {
        if let Some(open) = &mut self.state {
            open.event.bank = Some(bank);
        }
        self
    }

    /// Closes the span at `end_ns` and delivers it to every sink.
    ///
    /// Durations clamp at zero: an `end_ns` before the start records a
    /// zero-length span rather than a negative one.
    pub fn end(mut self, end_ns: f64) {
        if let Some(mut open) = self.state.take() {
            open.event.dur_ns = (end_ns - open.event.start_ns).max(0.0);
            Self::close(open);
        }
    }

    fn close(open: OpenSpan) {
        let OpenSpan { inner, event } = open;
        pop_open(&inner, event.seq);
        for sink in &inner.sinks {
            sink.on_span(&event);
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        // Un-ended span: keep the nesting stack balanced, emit nothing.
        if let Some(open) = self.state.take() {
            pop_open(&open.inner, open.event.seq);
        }
    }
}

fn pop_open(inner: &TracerInner, seq: u64) {
    let mut open = inner.open.lock();
    if let Some(pos) = open.iter().rposition(|&s| s == seq) {
        open.remove(pos);
    }
}

/// Renders a span event as a single JSON line (no trailing newline).
///
/// Used by [`super::JsonlSink`]; public so the `trace_summary` tooling
/// tests can round-trip events without a serde implementation.
pub fn span_to_json(event: &SpanEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"span\",\"seq\":");
    out.push_str(&event.seq.to_string());
    if let Some(parent) = event.parent {
        out.push_str(",\"parent\":");
        out.push_str(&parent.to_string());
    }
    out.push_str(",\"phase\":\"");
    out.push_str(event.phase.name());
    out.push_str("\",\"start_ns\":");
    push_f64(&mut out, event.start_ns);
    out.push_str(",\"dur_ns\":");
    push_f64(&mut out, event.dur_ns);
    if let Some(bank) = event.bank {
        out.push_str(",\"bank\":");
        out.push_str(&bank.to_string());
    }
    if !event.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (i, (key, value)) in event.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            match value {
                AttrValue::U64(v) => out.push_str(&v.to_string()),
                AttrValue::F64(v) => push_f64(&mut out, *v),
                AttrValue::Str(v) => {
                    out.push('"');
                    out.push_str(v);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// JSON has no NaN/Infinity literals; encode them as null.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push_str("null");
    }
}

/// Renders a counter snapshot entry as a single JSON line.
pub fn counter_to_json(name: &str, value: u64) -> String {
    format!("{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}")
}

/// Renders a gauge snapshot entry as a single JSON line.
pub fn gauge_to_json(name: &str, value: f64) -> String {
    let mut out = format!("{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":");
    push_f64(&mut out, value);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encoding_is_stable() {
        let event = SpanEvent {
            seq: 3,
            parent: Some(1),
            phase: Phase::MacGather,
            start_ns: 12.5,
            dur_ns: 3.0,
            bank: Some(2),
            attrs: vec![("block", AttrValue::U64(4)), ("kind", AttrValue::Str("pr"))],
        };
        assert_eq!(
            span_to_json(&event),
            "{\"type\":\"span\",\"seq\":3,\"parent\":1,\"phase\":\"mac_gather\",\
             \"start_ns\":12.500,\"dur_ns\":3.000,\"bank\":2,\
             \"attrs\":{\"block\":4,\"kind\":\"pr\"}}"
        );
    }

    #[test]
    fn json_minimal_span_omits_optionals() {
        let event = SpanEvent {
            seq: 0,
            parent: None,
            phase: Phase::Sfu,
            start_ns: 0.0,
            dur_ns: 1.0,
            bank: None,
            attrs: Vec::new(),
        };
        assert_eq!(
            span_to_json(&event),
            "{\"type\":\"span\",\"seq\":0,\"phase\":\"sfu\",\"start_ns\":0.000,\"dur_ns\":1.000}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        assert_eq!(
            gauge_to_json("u", f64::INFINITY),
            "{\"type\":\"gauge\",\"name\":\"u\",\"value\":null}"
        );
        assert_eq!(
            counter_to_json("mac_ops", 9),
            "{\"type\":\"counter\",\"name\":\"mac_ops\",\"value\":9}"
        );
    }
}
