//! In-tree tracing and metrics: phase spans, per-bank counters, and
//! pluggable event sinks.
//!
//! Every engine in the workspace (the GaaS-X accelerator, the GraphR
//! baseline, the CPU GridGraph baseline) threads a [`Tracer`] through its
//! execution. The tracer emits:
//!
//! * **phase spans** ([`SpanEvent`]) — one per modeled operation, tagged
//!   with a [`Phase`], a start/duration on the engine's *modeled* time
//!   axis (wall-clock for the CPU baseline), an optional bank id, and
//!   free-form attributes;
//! * **named metrics** ([`MetricsRegistry`]) — lock-free counters and
//!   gauges (atomics) plus mutex-guarded histograms, which the engines
//!   feed with the same tallies that build [`crate::OpSummary`].
//!
//! Spans flow to any number of [`Sink`]s: [`NullSink`] discards
//! (near-zero overhead — the default when tracing is off is an entirely
//! disabled tracer, which is cheaper still), [`AggregateSink`] keeps
//! per-phase/per-bank rollups in memory, and [`JsonlSink`] streams one
//! JSON object per event to a writer for offline analysis (see the
//! `trace_summary` binary in `gaasx-bench`).
//!
//! ## Time axes and the two totals
//!
//! A span's `start_ns`/`dur_ns` live on the engine's *functional* time
//! axis: operations are laid end to end as they execute, ignoring bank
//! parallelism. Summing span durations per phase therefore gives **busy
//! time** (`busy_ns`), which can far exceed the reported end-to-end
//! latency on a 2048-bank device. The engine separately attributes its
//! scheduled makespan to phases at `finish` time (**`sched_ns`**, see
//! [`PhaseBreakdown`]); those shares sum exactly to the run's
//! `elapsed_ns`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::histogram::Histogram;
use crate::report::OpSummary;
use crate::units::Nanos;

mod sink;
mod span;

pub use sink::{AggregateSink, JsonlSink, MemorySink, NullSink, Sink};
pub use span::{AttrValue, SpanEvent, SpanHandle};

/// Execution phase a span or counter belongs to.
///
/// The five pipeline phases mirror the paper's §III-B execution model;
/// [`Phase::Dispatch`] tags scheduler dispatch events (one per block,
/// carrying the bank id), and [`Phase::Init`] covers setup work outside
/// the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Setup outside the block pipeline (graph prep, buffer init).
    Init,
    /// Streaming a block/tile in and programming its crossbar rows.
    LoadBlock,
    /// CAM content searches locating active rows.
    CamSearch,
    /// Analog MAC accumulation in the gather direction.
    MacGather,
    /// Analog MAC accumulation in the propagate/scatter direction.
    MacPropagate,
    /// Scalar SFU arithmetic (apply/update steps).
    Sfu,
    /// Scheduler dispatch of a block to a bank.
    Dispatch,
}

impl Phase {
    /// All phases, in canonical display order.
    pub const ALL: [Phase; 7] = [
        Phase::Init,
        Phase::LoadBlock,
        Phase::CamSearch,
        Phase::MacGather,
        Phase::MacPropagate,
        Phase::Sfu,
        Phase::Dispatch,
    ];

    /// Stable snake_case name (also the JSONL encoding).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Init => "init",
            Phase::LoadBlock => "load_block",
            Phase::CamSearch => "cam_search",
            Phase::MacGather => "mac_gather",
            Phase::MacPropagate => "mac_propagate",
            Phase::Sfu => "sfu",
            Phase::Dispatch => "dispatch",
        }
    }

    /// Parses the stable name back into a phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Dense index into [`Phase::ALL`].
    pub fn index(self) -> usize {
        match self {
            Phase::Init => 0,
            Phase::LoadBlock => 1,
            Phase::CamSearch => 2,
            Phase::MacGather => 3,
            Phase::MacPropagate => 4,
            Phase::Sfu => 5,
            Phase::Dispatch => 6,
        }
    }
}

/// Per-phase share of one run, attached to [`crate::RunReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// The phase.
    pub phase: Phase,
    /// Share of the end-to-end makespan attributed to this phase.
    /// Summed over all entries this equals the report's `elapsed_ns`.
    pub sched_ns: Nanos,
    /// Total busy time summed over all units/spans (exceeds `sched_ns`
    /// whenever banks work in parallel).
    pub busy_ns: Nanos,
    /// Number of operations (spans) in this phase.
    pub count: u64,
}

/// Per-bank rollup derived from dispatch/banked spans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankBreakdown {
    /// Bank id.
    pub bank: u32,
    /// Total busy time on this bank.
    pub busy_ns: Nanos,
    /// Blocks dispatched to this bank.
    pub count: u64,
}

/// A monotone counter (atomic; safe to share across threads).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge (atomic f64 bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop over the f64 bits).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A named, shared, mutex-guarded histogram slot in the registry.
pub type SharedHistogram = Arc<Mutex<Histogram>>;

/// A registry of named counters, gauges, and histograms.
///
/// Counters and gauges are atomics behind an `RwLock`ed name table (the
/// lock is only taken to *find or create* a metric; updates through the
/// returned `Arc` are lock-free). Histograms take a mutex per update.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<Vec<(&'static str, Arc<Counter>)>>,
    gauges: RwLock<Vec<(&'static str, Arc<Gauge>)>>,
    histograms: RwLock<Vec<(&'static str, SharedHistogram)>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds or creates the counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some((_, c)) = self.counters.read().iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let mut table = self.counters.write();
        if let Some((_, c)) = table.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        table.push((name, Arc::clone(&c)));
        c
    }

    /// Finds or creates the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some((_, g)) = self.gauges.read().iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let mut table = self.gauges.write();
        if let Some((_, g)) = table.iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        table.push((name, Arc::clone(&g)));
        g
    }

    /// Finds or creates the histogram `name` (16 one-based buckets, the
    /// Fig 13 convention).
    pub fn histogram(&self, name: &'static str) -> Arc<Mutex<Histogram>> {
        if let Some((_, h)) = self.histograms.read().iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let mut table = self.histograms.write();
        if let Some((_, h)) = table.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Mutex::new(Histogram::new(16)));
        table.push((name, Arc::clone(&h)));
        h
    }

    /// Snapshot of all counters as `(name, value)` in creation order.
    pub fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(n, c)| (*n, c.get()))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)` in creation order.
    pub fn gauge_snapshot(&self) -> Vec<(&'static str, f64)> {
        self.gauges
            .read()
            .iter()
            .map(|(n, g)| (*n, g.get()))
            .collect()
    }

    /// Publishes every field of an [`OpSummary`] as a counter (the
    /// canonical names `mac_ops`, `cam_searches`, `cells_written`,
    /// `row_writes`, `verify_reads`, `sfu_ops`, `buffer_accesses`,
    /// `compute_items`).
    pub fn publish_op_summary(&self, ops: &OpSummary) {
        self.counter("mac_ops").add(ops.mac_ops);
        self.counter("cam_searches").add(ops.cam_searches);
        self.counter("cells_written").add(ops.cells_written);
        self.counter("row_writes").add(ops.row_writes);
        self.counter("verify_reads").add(ops.verify_reads);
        self.counter("sfu_ops").add(ops.sfu_ops);
        self.counter("buffer_accesses").add(ops.buffer_accesses);
        self.counter("compute_items").add(ops.compute_items);
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the other registry's value (last write wins, matching how a
    /// worker's final gauge would have landed had it written here
    /// directly), histograms merge bucket-wise (lossless — see
    /// [`Histogram::merge`]). The sharded execution layer uses this to
    /// fold worker-tracer metrics into the primary's registry so nothing
    /// recorded on a worker is dropped at merge time.
    ///
    /// `other` must be a different registry; merging a registry into
    /// itself would deadlock on the histogram mutexes.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        for &(name, ref c) in other.counters.read().iter() {
            self.counter(name).add(c.get());
        }
        for &(name, ref g) in other.gauges.read().iter() {
            self.gauge(name).set(g.get());
        }
        for &(name, ref h) in other.histograms.read().iter() {
            self.histogram(name).lock().merge(&h.lock());
        }
    }

    /// Reassembles an [`OpSummary`] from the canonical counters (zero for
    /// any counter never touched).
    pub fn op_summary(&self) -> OpSummary {
        let get = |name: &str| {
            self.counters
                .read()
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, c)| c.get())
        };
        OpSummary {
            mac_ops: get("mac_ops"),
            cam_searches: get("cam_searches"),
            cells_written: get("cells_written"),
            row_writes: get("row_writes"),
            verify_reads: get("verify_reads"),
            sfu_ops: get("sfu_ops"),
            buffer_accesses: get("buffer_accesses"),
            compute_items: get("compute_items"),
        }
    }
}

/// Proportionally attributes a scheduled makespan to phases.
///
/// `busy` lists `(phase, busy_ns, op_count)` tallies; entries that saw
/// neither busy time nor operations are dropped. Each surviving phase
/// receives a `sched_ns` share proportional to its busy time (an even
/// split if no busy time was recorded at all), and the largest share is
/// then adjusted so the shares sum to `makespan_ns` **exactly** — which is
/// what makes [`crate::RunReport::phases_total_sched_ns`] equal
/// `elapsed_ns` bit-for-bit rather than merely approximately.
pub fn attribute_makespan(makespan_ns: Nanos, busy: &[(Phase, Nanos, u64)]) -> Vec<PhaseBreakdown> {
    let total: Nanos = busy.iter().map(|&(_, ns, _)| ns.max(Nanos::ZERO)).sum();
    let mut out: Vec<PhaseBreakdown> = busy
        .iter()
        .filter(|&&(_, ns, count)| ns > Nanos::ZERO || count > 0)
        .map(|&(phase, ns, count)| PhaseBreakdown {
            phase,
            sched_ns: if total > Nanos::ZERO {
                // Raw f64 keeps the historical `(makespan * busy) / total`
                // evaluation order; `makespan * (busy / total)` rounds
                // differently and would break report bit-identity.
                Nanos::from_ns(makespan_ns.ns() * ns.max(Nanos::ZERO).ns() / total.ns())
            } else {
                Nanos::ZERO
            },
            busy_ns: ns.max(Nanos::ZERO),
            count,
        })
        .collect();
    if out.is_empty() {
        return out;
    }
    if total <= Nanos::ZERO {
        let even = makespan_ns / out.len() as f64;
        for p in &mut out {
            p.sched_ns = even;
        }
    }
    // Pin a share so the sum is exact, not within rounding — against the
    // same left-to-right summation order `phases_total_sched_ns` uses
    // (float addition does not re-associate). The pinned share must be
    // the *last* nonzero one: any trailing additions are then `+0.0`
    // (exact), so the correction suffers a single rounding and one-ulp
    // steps cannot straddle the target the way a mid-stream adjustment
    // can (where one input ulp may move the re-summed total by two).
    let pinned = out
        .iter()
        .rposition(|p| p.sched_ns > Nanos::ZERO)
        .unwrap_or(out.len() - 1);
    // Shares are non-negative finite, so stepping one ulp is a bit bump.
    let ulp_up = |x: Nanos| Nanos::from_ns(f64::from_bits(x.ns().to_bits() + 1));
    let ulp_down = |x: Nanos| {
        if x <= Nanos::ZERO {
            Nanos::ZERO
        } else {
            Nanos::from_ns(f64::from_bits(x.ns().to_bits() - 1))
        }
    };
    for _ in 0..64 {
        let total: Nanos = out.iter().map(|p| p.sched_ns).sum();
        if total == makespan_ns {
            break;
        }
        let cur = out[pinned].sched_ns;
        let mut next = (cur + (makespan_ns - total)).max(Nanos::ZERO);
        if next == cur {
            // The residue is below one ulp of the share; step directly.
            next = if total < makespan_ns {
                ulp_up(cur)
            } else {
                ulp_down(cur)
            };
        }
        if next == cur {
            break;
        }
        out[pinned].sched_ns = next;
    }
    out
}

#[derive(Debug)]
struct TracerInner {
    sinks: Vec<Arc<dyn Sink>>,
    /// Any sink actually consumes spans ([`Sink::observes_spans`]); when
    /// false, `span`/`emit` return before building an event.
    spans_active: bool,
    /// Any sink consumes timeline intervals
    /// ([`Sink::observes_intervals`]); when false, engines skip the
    /// per-operation ledger entirely.
    intervals_active: bool,
    seq: AtomicU64,
    open: Mutex<Vec<u64>>,
    metrics: MetricsRegistry,
}

/// Handle through which engines emit spans and metrics.
///
/// Cloning is cheap (an `Arc` bump). The default tracer is *disabled*:
/// every call is a branch on a `None` and nothing allocates, so
/// uninstrumented runs pay effectively nothing.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A disabled tracer (no sinks, no metrics; all calls are no-ops).
    pub fn null() -> Self {
        Tracer::default()
    }

    /// A tracer fanning out to the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        let spans_active = sinks.iter().any(|s| s.observes_spans());
        let intervals_active = sinks.iter().any(|s| s.observes_intervals());
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sinks,
                spans_active,
                intervals_active,
                seq: AtomicU64::new(0),
                open: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// A tracer with a single sink.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Tracer::new(vec![sink])
    }

    /// `true` when spans/metrics are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` when at least one sink actually consumes spans. A sharded
    /// run uses this to skip buffering worker spans that the primary's
    /// sinks would discard anyway.
    pub fn observes_spans(&self) -> bool {
        self.inner
            .as_deref()
            .is_some_and(|inner| inner.spans_active)
    }

    /// `true` when at least one sink consumes timeline intervals. Engines
    /// gate their per-operation timeline ledger on this so
    /// interval-blind runs (disabled tracer, [`NullSink`], pure metrics)
    /// skip the bookkeeping entirely.
    pub fn observes_intervals(&self) -> bool {
        self.inner
            .as_deref()
            .is_some_and(|inner| inner.intervals_active)
    }

    /// Fans one timeline interval out to the interval-observing sinks
    /// (no-op unless [`Tracer::observes_intervals`]). Engines call this
    /// once per interval while emitting the built timeline at `finish`.
    pub fn emit_interval(&self, interval: &crate::timeline::TimelineInterval) {
        if let Some(inner) = &self.inner {
            if !inner.intervals_active {
                return;
            }
            for sink in &inner.sinks {
                sink.on_interval(interval);
            }
        }
    }

    /// Re-emits a span captured elsewhere (typically from a worker
    /// engine's [`MemorySink`]) into this tracer's sinks. The event keeps
    /// its phase, timing, bank, and attributes but receives a fresh
    /// sequence number on this tracer, and drops any parent link — replay
    /// is a flat stream, worker-side nesting does not transfer.
    pub fn replay_span(&self, event: &SpanEvent) {
        if let Some(inner) = &self.inner {
            if !inner.spans_active {
                return;
            }
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            let replayed = SpanEvent {
                seq,
                parent: None,
                ..event.clone()
            };
            for sink in &inner.sinks {
                sink.on_span(&replayed);
            }
        }
    }

    /// Opens a span for `phase` starting at `start_ns` on the engine's
    /// modeled time axis. Chain [`SpanHandle::attr`]/[`SpanHandle::bank`]
    /// and finish with [`SpanHandle::end`]; a dropped-unended span is
    /// discarded.
    pub fn span(&self, phase: Phase, start_ns: f64) -> SpanHandle {
        match &self.inner {
            None => SpanHandle::disabled(),
            Some(inner) if !inner.spans_active => SpanHandle::disabled(),
            Some(inner) => {
                let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
                let parent = {
                    let mut open = inner.open.lock();
                    let parent = open.last().copied();
                    open.push(seq);
                    parent
                };
                SpanHandle::open(Arc::clone(inner), phase, start_ns, seq, parent)
            }
        }
    }

    /// Emits a closed span in one call — the fast path for leaf operations
    /// that never nest (no open-stack push/pop, no handle).
    pub fn emit(&self, phase: Phase, start_ns: f64, dur_ns: f64) {
        if let Some(inner) = &self.inner {
            if !inner.spans_active {
                return;
            }
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            let parent = inner.open.lock().last().copied();
            let event = SpanEvent {
                seq,
                parent,
                phase,
                start_ns,
                dur_ns: dur_ns.max(0.0),
                bank: None,
                attrs: Vec::new(),
            };
            for sink in &inner.sinks {
                sink.on_span(&event);
            }
        }
    }

    /// The metrics registry, if the tracer is enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|inner| &inner.metrics)
    }

    /// Adds `n` to counter `name` (no-op when disabled).
    pub fn counter_add(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(n);
        }
    }

    /// Sets gauge `name` (no-op when disabled).
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name).set(value);
        }
    }

    /// Records `value` into histogram `name` (no-op when disabled).
    pub fn histogram_record(&self, name: &'static str, value: usize) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name).lock().record(value);
        }
    }

    /// Pushes the current metric snapshot to every sink and flushes
    /// buffered output (call once per run, at `finish`).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let counters = inner.metrics.counter_snapshot();
            let gauges = inner.metrics.gauge_snapshot();
            for sink in &inner.sinks {
                for &(name, value) in &counters {
                    sink.on_counter(name, value);
                }
                for &(name, value) in &gauges {
                    sink.on_gauge(name, value);
                }
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_name(phase.name()), Some(phase));
            assert_eq!(Phase::ALL[phase.index()], phase);
        }
        assert_eq!(Phase::from_name("bogus"), None);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::null();
        assert!(!t.enabled());
        t.span(Phase::Sfu, 0.0).attr("k", 1u64).bank(3).end(5.0);
        t.counter_add("mac_ops", 5);
        t.flush();
        assert!(t.metrics().is_none());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("mac_ops");
        c.add(3);
        reg.counter("mac_ops").inc();
        assert_eq!(reg.counter("mac_ops").get(), 4);
        let g = reg.gauge("util");
        g.set(0.5);
        g.add(0.25);
        assert!((reg.gauge("util").get() - 0.75).abs() < 1e-12);
        reg.histogram("rows").lock().record(3);
        assert_eq!(reg.histogram("rows").lock().total(), 1);
    }

    #[test]
    fn op_summary_round_trips_through_registry() {
        let reg = MetricsRegistry::new();
        let ops = OpSummary {
            mac_ops: 7,
            cam_searches: 5,
            cells_written: 100,
            row_writes: 10,
            verify_reads: 6,
            sfu_ops: 3,
            buffer_accesses: 42,
            compute_items: 99,
        };
        reg.publish_op_summary(&ops);
        assert_eq!(reg.op_summary(), ops);
        // Publishing again accumulates.
        reg.publish_op_summary(&ops);
        assert_eq!(reg.op_summary().mac_ops, 14);
    }

    #[test]
    fn attribution_sums_exactly_and_drops_idle_phases() {
        let makespan = Nanos::from_ns(1234.567);
        let busy = [
            (Phase::LoadBlock, Nanos::from_ns(300.0), 10),
            (Phase::CamSearch, Nanos::from_ns(0.1), 3),
            (Phase::MacGather, Nanos::from_ns(7000.0), 99),
            (Phase::Sfu, Nanos::ZERO, 0), // idle: dropped
        ];
        let phases = attribute_makespan(makespan, &busy);
        assert_eq!(phases.len(), 3);
        let sum: Nanos = phases.iter().map(|p| p.sched_ns).sum();
        assert_eq!(sum, makespan, "shares must sum exactly");
        // Shares order like busy times.
        assert!(phases[2].sched_ns > phases[0].sched_ns);
        assert!(phases[0].sched_ns > phases[1].sched_ns);
        assert_eq!(phases[2].count, 99);
    }

    #[test]
    fn attribution_handles_degenerate_inputs() {
        let ns = Nanos::from_ns;
        assert!(attribute_makespan(ns(10.0), &[]).is_empty());
        assert!(attribute_makespan(ns(10.0), &[(Phase::Sfu, Nanos::ZERO, 0)]).is_empty());
        // Counted ops without busy time split the makespan evenly.
        let phases = attribute_makespan(
            ns(10.0),
            &[
                (Phase::Sfu, Nanos::ZERO, 4),
                (Phase::CamSearch, Nanos::ZERO, 1),
            ],
        );
        let sum: Nanos = phases.iter().map(|p| p.sched_ns).sum();
        assert_eq!(sum, ns(10.0));
        // Zero makespan yields zero shares.
        let z = attribute_makespan(Nanos::ZERO, &[(Phase::Sfu, ns(5.0), 1)]);
        assert_eq!(z[0].sched_ns, Nanos::ZERO);
        assert_eq!(z[0].busy_ns, ns(5.0));
    }

    #[test]
    fn registry_merge_is_lossless() {
        let whole = MetricsRegistry::new();
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        // The same value stream split across two workers vs recorded in
        // one registry: merged quantiles must match the whole-run ones.
        for v in 1..=64usize {
            let value = (v % 16).max(1);
            let shard = if v % 2 == 0 { &a } else { &b };
            shard.histogram("rows_per_mac").lock().record(value);
            whole.histogram("rows_per_mac").lock().record(value);
        }
        a.counter("mac_ops").add(10);
        b.counter("mac_ops").add(5);
        a.gauge("elapsed_ns").set(1.0);
        b.gauge("elapsed_ns").set(2.0);

        let merged = MetricsRegistry::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.counter("mac_ops").get(), 15);
        assert!((merged.gauge("elapsed_ns").get() - 2.0).abs() < 1e-12);
        let m = merged.histogram("rows_per_mac");
        let w = whole.histogram("rows_per_mac");
        assert_eq!(*m.lock(), *w.lock(), "bucket-wise identical");
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                m.lock().value_at_quantile(q),
                w.lock().value_at_quantile(q),
                "quantile {q} differs after merge"
            );
        }
    }

    #[test]
    fn null_sink_tracer_skips_spans_but_keeps_metrics() {
        let t = Tracer::with_sink(Arc::new(NullSink));
        assert!(t.enabled());
        t.emit(Phase::MacGather, 0.0, 5.0);
        t.span(Phase::LoadBlock, 0.0).attr("k", 1u64).end(2.0);
        t.counter_add("mac_ops", 3);
        // No sequence numbers were consumed: emission short-circuited.
        let probe = Tracer::new(vec![Arc::new(NullSink), Arc::new(AggregateSink::new())]);
        probe.emit(Phase::Sfu, 0.0, 1.0); // mixed sinks stay active
        assert_eq!(t.metrics().unwrap().op_summary().mac_ops, 3);
        t.flush();
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let agg = Arc::new(AggregateSink::new());
        let t = Tracer::with_sink(agg.clone());
        let outer = t.span(Phase::LoadBlock, 0.0);
        t.span(Phase::CamSearch, 1.0).end(2.0);
        outer.end(10.0);
        let phases = agg.phase_rollup();
        let load = phases.iter().find(|p| p.phase == Phase::LoadBlock).unwrap();
        assert!((load.busy_ns.ns() - 10.0).abs() < 1e-12);
        assert_eq!(load.count, 1);
        let cam = phases.iter().find(|p| p.phase == Phase::CamSearch).unwrap();
        assert!((cam.busy_ns.ns() - 1.0).abs() < 1e-12);
    }
}
