//! Event-driven bank scheduling — the fine-grained alternative to the
//! synchronous wave model of [`crate::pipeline`].
//!
//! The wave model batches `num_banks` blocks behind a barrier: simple, and
//! faithful to a synchronous controller. A real controller can run
//! asynchronously: it streams blocks one at a time over the shared
//! storage channel and dispatches each to the earliest-available bank,
//! which programs the block and then computes it (the bank's arrays hold
//! one block, so program/compute serialize *within* a bank while banks
//! proceed independently). [`BankScheduler`] simulates exactly that
//! list-scheduling discipline. Neither model dominates the other — waves
//! pay barriers but overlap streaming with programming inside a wave — and
//! the two converge as utilization rises.

use serde::{Deserialize, Serialize};

use crate::units::Nanos;

/// Dispatch discipline for block scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Synchronous waves of `num_banks` blocks with a load/compute pipeline
    /// barrier between waves (the default; matches a simple controller).
    #[default]
    Waves,
    /// Asynchronous earliest-available-bank dispatch over a serial stream
    /// channel (this module).
    EventDriven,
}

/// The outcome of one [`BankScheduler::dispatch`]: which bank ran the
/// block and when. Feeds the tracing layer's per-bank dispatch events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DispatchRecord {
    /// The bank the block was assigned to.
    pub bank: u32,
    /// When the block's stream over the shared channel completed.
    pub stream_done_ns: Nanos,
    /// When the bank started programming the block.
    pub start_ns: Nanos,
    /// When the bank finished computing the block.
    pub done_ns: Nanos,
}

/// An event-driven scheduler over `num_banks` independent banks fed by one
/// serial streaming channel.
#[derive(Debug, Clone)]
pub struct BankScheduler {
    /// Earliest time each bank becomes free.
    bank_free: Vec<Nanos>,
    /// Earliest time the streaming channel becomes free.
    stream_free: Nanos,
    makespan: Nanos,
}

impl BankScheduler {
    /// A scheduler with `num_banks` banks, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero.
    pub fn new(num_banks: usize) -> Self {
        assert!(num_banks > 0, "need at least one bank");
        BankScheduler {
            bank_free: vec![Nanos::ZERO; num_banks],
            stream_free: Nanos::ZERO,
            makespan: Nanos::ZERO,
        }
    }

    /// Dispatches one block: its data streams over the shared channel for
    /// `stream_ns`, then the earliest-free bank programs it for
    /// `program_ns` and computes for `compute_ns`. Returns the dispatch
    /// record (bank id and start/completion times).
    pub fn dispatch(
        &mut self,
        stream_ns: Nanos,
        program_ns: Nanos,
        compute_ns: Nanos,
    ) -> DispatchRecord {
        let stream_done = self.stream_free + stream_ns;
        self.stream_free = stream_done;
        // Earliest-available bank.
        let (idx, &free) = self
            .bank_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            // gaasx-lint: allow(panic-in-lib) -- config validation rejects zero banks before a DES schedule is built
            .expect("at least one bank");
        let start = stream_done.max(free);
        let done = start + program_ns + compute_ns;
        self.bank_free[idx] = done;
        self.makespan = self.makespan.max(done);
        DispatchRecord {
            bank: idx as u32,
            stream_done_ns: stream_done,
            start_ns: start,
            done_ns: done,
        }
    }

    /// Completion time of the last finished block.
    pub fn makespan(&self) -> Nanos {
        self.makespan
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.bank_free.len()
    }

    /// Mean bank utilization up to the makespan (busy time over
    /// `banks × makespan`); `None` before any dispatch.
    pub fn utilization(&self, total_busy_ns: Nanos) -> Option<f64> {
        if self.makespan == Nanos::ZERO {
            return None;
        }
        Some(total_busy_ns / (self.bank_free.len() as f64 * self.makespan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineClock;

    fn ns(v: f64) -> Nanos {
        Nanos::from_ns(v)
    }

    #[test]
    fn single_bank_serializes() {
        let mut s = BankScheduler::new(1);
        s.dispatch(ns(1.0), ns(10.0), ns(5.0));
        s.dispatch(ns(1.0), ns(10.0), ns(5.0));
        // Stream of block 2 (done at t=2) waits for the bank (free at 16).
        assert!((s.makespan().ns() - 31.0).abs() < 1e-12);
    }

    #[test]
    fn independent_banks_run_in_parallel() {
        let mut s = BankScheduler::new(4);
        for _ in 0..4 {
            s.dispatch(ns(1.0), ns(10.0), ns(5.0));
        }
        // Streams serialize (1,2,3,4); banks overlap: last starts at 4.
        assert!((s.makespan().ns() - 19.0).abs() < 1e-12);
    }

    #[test]
    fn stream_channel_can_be_the_bottleneck() {
        let mut s = BankScheduler::new(8);
        for _ in 0..8 {
            s.dispatch(ns(10.0), ns(1.0), ns(1.0));
        }
        // 8 serial streams of 10 then the final 2 ns of work.
        assert!((s.makespan().ns() - 82.0).abs() < 1e-12);
    }

    #[test]
    fn event_driven_and_wave_models_agree_to_within_a_small_factor() {
        // The two disciplines bracket each other: waves add barriers (DES
        // wins) but overlap streaming with programming inside a wave (waves
        // win); neither should stray far from the other, and both respect
        // the aggregate-work lower bound.
        let blocks: Vec<(f64, f64, f64)> = (0..37)
            .map(|i| {
                let f = i as f64;
                (
                    1.0 + (f * 7.0) % 3.0,
                    5.0 + (f * 13.0) % 11.0,
                    2.0 + (f * 5.0) % 9.0,
                )
            })
            .collect();
        let banks = 4;

        let mut des = BankScheduler::new(banks);
        for &(s, p, c) in &blocks {
            des.dispatch(ns(s), ns(p), ns(c));
        }

        let mut clock = PipelineClock::new();
        for wave in blocks.chunks(banks) {
            let stream: f64 = wave.iter().map(|b| b.0).sum();
            let program = wave.iter().map(|b| b.1).fold(0.0, f64::max);
            let compute = wave.iter().map(|b| b.2).fold(0.0, f64::max);
            clock.advance(stream.max(program), compute);
        }
        let ratio = des.makespan().ns() / clock.makespan();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "des {} vs waves {}",
            des.makespan(),
            clock.makespan()
        );
        // DES banks are single-buffered, so it respects the aggregate
        // work lower bound. (The wave model assumes double-buffered banks —
        // loads overlap the previous wave's compute — so the bound does not
        // apply to it.)
        let total_work: f64 = blocks.iter().map(|b| b.1 + b.2).sum();
        assert!(des.makespan().ns() >= total_work / banks as f64 - 1e-9);
    }

    #[test]
    fn dispatch_records_bank_and_times() {
        let mut s = BankScheduler::new(2);
        let a = s.dispatch(ns(1.0), ns(2.0), ns(3.0));
        assert_eq!(
            (a.bank, a.stream_done_ns, a.start_ns, a.done_ns),
            (0, ns(1.0), ns(1.0), ns(6.0))
        );
        // Second block streams behind the first and lands on the idle bank.
        let b = s.dispatch(ns(1.0), ns(2.0), ns(3.0));
        assert_eq!((b.bank, b.start_ns, b.done_ns), (1, ns(2.0), ns(7.0)));
        // Third waits for the earliest-free bank (bank 0, free at 6).
        let c = s.dispatch(ns(1.0), ns(2.0), ns(3.0));
        assert_eq!((c.bank, c.start_ns, c.done_ns), (0, ns(6.0), ns(11.0)));
    }

    #[test]
    fn utilization_bounds() {
        let mut s = BankScheduler::new(2);
        s.dispatch(ns(0.0), ns(5.0), ns(5.0));
        s.dispatch(ns(0.0), ns(5.0), ns(5.0));
        let u = s.utilization(ns(20.0)).unwrap();
        assert!((u - 1.0).abs() < 1e-12);
        assert!(BankScheduler::new(2).utilization(ns(1.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        BankScheduler::new(0);
    }
}
