//! Property tests for the unit-of-measure newtypes ([`Nanos`],
//! [`Picojoules`], [`Nanojoules`]): every arithmetic door the accounting
//! paths use must be **bit-identical** to the raw `f64` expression it
//! replaced. The newtypes exist to catch unit mixing at compile time and
//! in `gaasx-lint`'s `mixed-units` pass — they must never perturb a
//! single mantissa bit of the BENCH artifacts.

#![allow(clippy::unwrap_used)]

use gaasx_sim::{Nanojoules, Nanos, Picojoules};
use proptest::collection::vec;
use proptest::prelude::*;

/// One raw-vs-typed operation on the running accumulator. Encoded as
/// `(kind % 4, magnitude)` tuples because the offline proptest shim has
/// no `prop_oneof!`; the magnitudes span the sim's real dynamic range
/// (sub-ns device latencies up to multi-second campaign wall clocks).
#[derive(Debug, Clone, Copy)]
enum Op {
    Add(f64),
    Sub(f64),
    MulScalar(f64),
    DivScalar(f64),
}

fn decode(ops: &[(u8, f64)]) -> Vec<Op> {
    ops.iter()
        .map(|&(kind, v)| match kind % 4 {
            0 => Op::Add(v),
            1 => Op::Sub(v),
            2 => Op::MulScalar(v % 1e6),
            _ => Op::DivScalar(v % 1e6),
        })
        .collect()
}

/// Applies `ops` to a raw `f64` accumulator.
fn fold_raw(start: f64, ops: &[Op]) -> f64 {
    let mut acc = start;
    for &op in ops {
        match op {
            Op::Add(v) => acc += v,
            Op::Sub(v) => acc -= v,
            Op::MulScalar(s) => acc *= s,
            Op::DivScalar(s) => acc /= s,
        }
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Nanos` arithmetic is bit-for-bit the raw `f64` fold.
    #[test]
    fn nanos_fold_is_bit_identical(
        start in -1e12f64..1e12f64,
        raw_ops in vec((0u8..4, -1e12f64..1e12f64), 0..48),
    ) {
        let ops = decode(&raw_ops);
        let mut acc = Nanos::from_ns(start);
        for &op in &ops {
            match op {
                Op::Add(v) => acc += Nanos::from_ns(v),
                Op::Sub(v) => acc -= Nanos::from_ns(v),
                Op::MulScalar(s) => acc *= s,
                Op::DivScalar(s) => acc /= s,
            }
        }
        let raw = fold_raw(start, &ops);
        prop_assert_eq!(acc.ns().to_bits(), raw.to_bits());
    }

    /// `Picojoules` arithmetic is bit-for-bit the raw `f64` fold, and the
    /// single pJ→nJ conversion door matches the literal `/ 1000.0`.
    #[test]
    fn picojoules_fold_is_bit_identical(
        start in -1e12f64..1e12f64,
        raw_ops in vec((0u8..4, -1e12f64..1e12f64), 0..48),
    ) {
        let ops = decode(&raw_ops);
        let mut acc = Picojoules::from_pj(start);
        for &op in &ops {
            match op {
                Op::Add(v) => acc += Picojoules::from_pj(v),
                Op::Sub(v) => acc -= Picojoules::from_pj(v),
                Op::MulScalar(s) => acc *= s,
                Op::DivScalar(s) => acc /= s,
            }
        }
        let raw = fold_raw(start, &ops);
        prop_assert_eq!(acc.pj().to_bits(), raw.to_bits());
        prop_assert_eq!(
            acc.to_nanojoules().nj().to_bits(),
            (raw / 1000.0).to_bits()
        );
    }

    /// Binary `+`/`-`, scalar forms on both sides, and self-division all
    /// match their raw counterparts bit-for-bit.
    #[test]
    fn binary_ops_match_raw(a in -1e12f64..1e12f64, b in -1e12f64..1e12f64) {
        let (x, y) = (Nanos::from_ns(a), Nanos::from_ns(b));
        prop_assert_eq!((x + y).ns().to_bits(), (a + b).to_bits());
        prop_assert_eq!((x - y).ns().to_bits(), (a - b).to_bits());
        prop_assert_eq!((x * b).ns().to_bits(), (a * b).to_bits());
        prop_assert_eq!((b * x).ns().to_bits(), (b * a).to_bits());
        prop_assert_eq!((x / b).ns().to_bits(), (a / b).to_bits());
        // Unit / unit cancels into a bare ratio.
        prop_assert_eq!((x / y).to_bits(), (a / b).to_bits());
        prop_assert_eq!(x.max(y).ns().to_bits(), a.max(b).to_bits());
        prop_assert_eq!(x.min(y).ns().to_bits(), a.min(b).to_bits());
    }

    /// `Sum` over owned and borrowed iterators matches the raw
    /// `.sum::<f64>()` it replaced (same association order — and same
    /// `-0.0` empty-sum identity), for both time and energy.
    #[test]
    fn sum_matches_raw_left_fold(values in vec(-1e9f64..1e9f64, 0..64)) {
        let raw: f64 = values.iter().sum();
        let owned: Nanos = values.iter().map(|&v| Nanos::from_ns(v)).sum();
        prop_assert_eq!(owned.ns().to_bits(), raw.to_bits());
        let typed: Vec<Picojoules> =
            values.iter().map(|&v| Picojoules::from_pj(v)).collect();
        let borrowed: Picojoules = typed.iter().sum();
        prop_assert_eq!(borrowed.pj().to_bits(), raw.to_bits());
    }

    /// `Display` delegates to `f64`'s formatting exactly — the BENCH
    /// tables print through `{:.6}`-style format strings.
    #[test]
    fn display_matches_f64(v in -1e12f64..1e12f64) {
        prop_assert_eq!(format!("{:.6}", Nanos::from_ns(v)), format!("{v:.6}"));
        prop_assert_eq!(format!("{}", Nanojoules::from_nj(v)), format!("{v}"));
    }
}
