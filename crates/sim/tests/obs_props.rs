//! Property tests for the tracing layer: the `AggregateSink` rollup must
//! be a pure function of the emitted span set, independent of how spans
//! nest.

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use gaasx_sim::{AggregateSink, Phase, Tracer};
use proptest::collection::vec;
use proptest::prelude::*;

/// Replays `spans` through a fresh tracer. `nested[i]` selects whether
/// span `i` opens as a child on the open stack (closed at the end, LIFO)
/// or is emitted as a closed leaf immediately.
fn replay(spans: &[(usize, f64)], nested: &[bool]) -> Vec<(Phase, f64, u64)> {
    let sink = Arc::new(AggregateSink::new());
    let tracer = Tracer::with_sink(sink.clone());
    let mut cursor = 0.0;
    let mut open = Vec::new();
    for (&(phase_idx, dur), &nest) in spans.iter().zip(nested) {
        let phase = Phase::ALL[phase_idx % Phase::ALL.len()];
        if nest {
            open.push((tracer.span(phase, cursor), cursor + dur));
        } else {
            tracer.emit(phase, cursor, dur);
        }
        cursor += dur;
    }
    while let Some((handle, end)) = open.pop() {
        handle.end(end);
    }
    sink.phase_rollup()
        .into_iter()
        .map(|p| (p.phase, p.busy_ns.ns(), p.count))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aggregate_totals_equal_span_sums_regardless_of_nesting(
        spans in vec((0usize..7, 0.0f64..1000.0), 1..40),
        nest_bits in vec(0u8..2, 40),
    ) {
        let nested: Vec<bool> = nest_bits.iter().map(|&b| b == 1).collect();
        let rollup = replay(&spans, &nested);

        // Expected: straight per-phase sums over the input, no nesting
        // involved at all.
        let mut busy = [0.0f64; 7];
        let mut counts = [0u64; 7];
        for &(phase_idx, dur) in &spans {
            busy[phase_idx % 7] += dur;
            counts[phase_idx % 7] += 1;
        }

        for &(phase, got_busy, got_count) in &rollup {
            let i = phase.index();
            prop_assert!(
                (got_busy - busy[i]).abs() <= 1e-6 * busy[i].max(1.0),
                "{phase:?}: sink busy {got_busy} vs span sum {}", busy[i]
            );
            prop_assert_eq!(got_count, counts[i]);
        }
        // Every phase that saw a span appears in the rollup.
        let reported: u64 = rollup.iter().map(|&(_, _, c)| c).sum();
        prop_assert_eq!(reported, spans.len() as u64);

        // And the all-leaf replay agrees with the nested one (up to
        // floating-point summation order).
        let flat = replay(&spans, &vec![false; spans.len()]);
        prop_assert_eq!(rollup.len(), flat.len());
        for (&(p_a, busy_a, count_a), &(p_b, busy_b, count_b)) in rollup.iter().zip(&flat) {
            prop_assert_eq!(p_a, p_b);
            prop_assert_eq!(count_a, count_b);
            prop_assert!((busy_a - busy_b).abs() <= 1e-6 * busy_a.max(1.0));
        }
    }
}
