//! The bounded admission queue.
//!
//! Serving code must never buffer unboundedly — an overloaded server
//! sheds load with a typed [`crate::ServeError::Overloaded`] instead of
//! growing a queue until the host dies. [`BoundedQueue`] is the only
//! queue the serve crate uses, and `gaasx-lint`'s `unbounded-queue` rule
//! keeps it that way.

use std::collections::VecDeque;

/// A FIFO queue with a hard capacity: `push` on a full queue hands the
/// item back instead of growing.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends `item`, or returns it as `Err` when the queue is full —
    /// the caller owes the producer a typed rejection.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when the next `push` would be rejected.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The hard bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_past_capacity_and_preserves_fifo_order() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push("a").is_ok());
        assert_eq!(q.push("b"), Err("b"));
    }
}
