//! Graphs resident on crossbar banks across queries.
//!
//! A [`ResidentGraph`] keeps a programmed [`ShardedEngine`] alive between
//! queries so consecutive queries skip partitioning and reuse the warm
//! search memo; per-query accounting is wiped with
//! [`ShardedEngine::reset_accounting`] while device state — endurance
//! wear, fault RNG streams, spare-row remaps — persists, exactly as it
//! would on real hardware. Eviction drops the engines (freeing the
//! modeled banks); the next query *reprograms* the graph onto fresh
//! banks, which resets wear but changes nothing functionally.
//!
//! A panic-replacement rebuild is different: the replacement engines run
//! on the *same* modeled banks, so the wear ledger is carried over via
//! [`WearSnapshot`].

use gaasx_graph::{CooGraph, VertexId};
use gaasx_sim::Nanos;

use gaasx_core::algorithms::{Bfs, ShardableAlgorithm, Sssp};
use gaasx_core::{CoreError, GaasXConfig, ShardedEngine, WearSnapshot};

use crate::batch::run_batch;
use crate::server::{QueryKind, QueryOutput};

/// A registered graph and (when resident) its programmed engines.
#[derive(Debug)]
pub struct ResidentGraph {
    name: String,
    graph: CooGraph,
    config: GaasXConfig,
    jobs: usize,
    exec: Option<ShardedEngine>,
    /// Dispatch sequence number of the most recent query — the LRU key.
    last_used: u64,
    queries_served: u64,
    programs: u64,
}

impl ResidentGraph {
    /// Registers a graph (not yet resident — banks are programmed on
    /// first use).
    pub fn new(name: String, graph: CooGraph, config: GaasXConfig, jobs: usize) -> Self {
        ResidentGraph {
            name,
            graph,
            config,
            jobs,
            exec: None,
            last_used: 0,
            queries_served: 0,
            programs: 0,
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered graph.
    pub fn graph(&self) -> &CooGraph {
        &self.graph
    }

    /// Edges the graph occupies when resident.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// `true` while the graph holds programmed banks.
    pub fn is_resident(&self) -> bool {
        self.exec.is_some()
    }

    /// Queries served since registration.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Times the graph was programmed onto banks (first use plus every
    /// post-eviction reprogram and panic replacement).
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// The LRU key: dispatch sequence number of the last query.
    pub fn last_used(&self) -> u64 {
        self.last_used
    }

    /// Marks the graph as just used.
    pub fn touch(&mut self, seq: u64) {
        self.last_used = seq;
    }

    /// Ensures the graph is resident, programming fresh engines if it was
    /// evicted (or never used). Returns `true` when banks were (re)programmed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an inconsistent device
    /// configuration.
    pub fn ensure_resident(&mut self) -> Result<bool, CoreError> {
        if self.exec.is_some() {
            return Ok(false);
        }
        self.exec = Some(ShardedEngine::new(self.config.clone(), self.jobs)?);
        self.programs = self.programs.saturating_add(1);
        Ok(true)
    }

    /// Drops the programmed engines, freeing the modeled banks. The next
    /// query reprograms from scratch (fresh wear, fresh memo).
    pub fn evict(&mut self) {
        self.exec = None;
    }

    /// Total device writes across the resident engines' wear ledgers —
    /// zero when not resident or when no fault model tracks endurance.
    pub fn wear_total(&self) -> u64 {
        self.exec.as_ref().map_or(0, |exec| {
            exec.wear_snapshots()
                .iter()
                .map(WearSnapshot::total_writes)
                .fold(0u64, u64::saturating_add)
        })
    }

    /// Replaces the engines after a caught worker panic. Unlike eviction
    /// the replacement runs on the *same* modeled banks, so endurance
    /// wear carries over.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an inconsistent device
    /// configuration.
    pub fn replace_after_panic(&mut self) -> Result<(), CoreError> {
        let wear = self
            .exec
            .as_ref()
            .map(ShardedEngine::wear_snapshots)
            .unwrap_or_default();
        let mut fresh = ShardedEngine::new(self.config.clone(), self.jobs)?;
        fresh.restore_wear(&wear);
        self.exec = Some(fresh);
        self.programs = self.programs.saturating_add(1);
        Ok(())
    }

    /// Runs one query against the resident engines, returning the output
    /// plus its full [`gaasx_sim::RunReport`]; accounting is reset
    /// afterwards so the next query starts from a clean bill.
    ///
    /// Mirrors `GaasX::run_labeled_sharded` exactly — same search
    /// profile, same `finish` labeling, same partial-report attachment on
    /// device faults and cancellations — so a resident query is
    /// bit-comparable to a one-shot run of the same request.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] with the partial report attached for device
    /// faults and deadline cancellations; other errors pass through.
    pub fn run_query(
        &mut self,
        kind: &QueryKind,
        deadline: Option<Nanos>,
    ) -> Result<QueryOutput, CoreError> {
        let num_edges = self.graph.num_edges() as u64;
        let exec = self.exec.as_mut().ok_or_else(|| {
            CoreError::InvalidInput(format!("graph {:?} is not resident", self.name))
        })?;
        exec.set_search_profile(gaasx_xbar::SearchProfile::Frontier);
        exec.set_deadline(deadline);
        // (per-query values, per-query iterations, algorithm label).
        type QueryRun = (Vec<Vec<f64>>, Vec<u32>, &'static str);
        let run: Result<QueryRun, CoreError> = match kind {
            QueryKind::Bfs { source } => Bfs::from_source(VertexId::new(*source))
                .execute_on(exec, &self.graph)
                .map(|r| (vec![r.output], vec![r.iterations], "bfs")),
            QueryKind::Sssp { source } => Sssp::from_source(VertexId::new(*source))
                .execute_on(exec, &self.graph)
                .map(|r| (vec![r.output], vec![r.iterations], "sssp")),
            QueryKind::BatchBfs { sources } => {
                let sources: Vec<VertexId> = sources.iter().map(|&s| VertexId::new(s)).collect();
                run_batch(exec, &self.graph, false, &sources)
                    .map(|b| (b.values, b.iterations, "bfs_batch"))
            }
            QueryKind::BatchSssp { sources } => {
                let sources: Vec<VertexId> = sources.iter().map(|&s| VertexId::new(s)).collect();
                run_batch(exec, &self.graph, true, &sources)
                    .map(|b| (b.values, b.iterations, "sssp_batch"))
            }
            QueryKind::DebugPanic => {
                // gaasx-lint: allow(panic-in-lib) -- deliberate fault-injection probe for the serve boundary's catch_unwind guard
                panic!("deliberate debug panic injected into worker")
            }
        };
        match run {
            Ok((values, iterations, algorithm)) => {
                let supersteps = iterations.iter().copied().max().unwrap_or(0);
                let report = exec.finish("gaasx", algorithm, &self.name, supersteps, num_edges);
                exec.reset_accounting();
                self.queries_served = self.queries_served.saturating_add(1);
                Ok(QueryOutput {
                    values,
                    iterations,
                    report,
                })
            }
            Err(e) => {
                let e = match e {
                    CoreError::DeviceFault {
                        detail,
                        report: None,
                    } => {
                        let partial = exec.finish("gaasx", "query", &self.name, 0, num_edges);
                        CoreError::DeviceFault {
                            detail,
                            report: Some(Box::new(partial)),
                        }
                    }
                    CoreError::Cancelled {
                        detail,
                        report: None,
                    } => {
                        let partial = exec.finish("gaasx", "query", &self.name, 0, num_edges);
                        CoreError::Cancelled {
                            detail,
                            report: Some(Box::new(partial)),
                        }
                    }
                    other => other,
                };
                exec.reset_accounting();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_graph::generators;

    fn resident(jobs: usize) -> ResidentGraph {
        let g = generators::rmat(&generators::RmatConfig::new(1 << 6, 400).with_seed(4)).unwrap();
        ResidentGraph::new("rmat".into(), g, GaasXConfig::small(), jobs)
    }

    #[test]
    fn consecutive_queries_on_a_resident_graph_bill_identically() {
        let mut r = resident(2);
        r.ensure_resident().unwrap();
        let kind = QueryKind::Bfs { source: 0 };
        let a = r.run_query(&kind, None).unwrap();
        let b = r.run_query(&kind, None).unwrap();
        assert_eq!(a.values, b.values);
        assert_eq!(a.report.ops, b.report.ops);
        assert_eq!(a.report.elapsed_ns, b.report.elapsed_ns);
        assert_eq!(r.queries_served(), 2);
        assert_eq!(r.programs(), 1);
    }

    #[test]
    fn eviction_forces_a_reprogram() {
        let mut r = resident(1);
        assert!(r.ensure_resident().unwrap());
        assert!(!r.ensure_resident().unwrap());
        r.evict();
        assert!(!r.is_resident());
        assert!(r.ensure_resident().unwrap());
        assert_eq!(r.programs(), 2);
    }

    #[test]
    fn unresident_query_is_an_input_error() {
        let mut r = resident(1);
        let e = r
            .run_query(&QueryKind::Bfs { source: 0 }, None)
            .unwrap_err();
        assert!(matches!(e, CoreError::InvalidInput(_)));
    }

    #[test]
    fn deadline_miss_attaches_a_partial_report() {
        let mut r = resident(1);
        r.ensure_resident().unwrap();
        let e = r
            .run_query(&QueryKind::Sssp { source: 0 }, Some(Nanos::ZERO))
            .unwrap_err();
        match e {
            CoreError::Cancelled {
                report: Some(report),
                ..
            } => assert!(report.elapsed_ns > Nanos::ZERO),
            other => panic!("want Cancelled with report, got {other}"),
        }
        // The resident engine is reusable after the miss.
        assert!(r.run_query(&QueryKind::Sssp { source: 0 }, None).is_ok());
    }
}
