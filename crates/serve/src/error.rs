//! Typed failure contract of the serving layer.
//!
//! Every query the server cannot complete comes back as a [`ServeError`]
//! variant — never a silent drop, never a panic escaping the server.
//! Rejections carry retry hints; failures that happened *after* work was
//! performed carry the partial [`RunReport`] so the aborted work remains
//! observable and billable (the same graceful-degradation contract as
//! [`CoreError::DeviceFault`]).

use std::error::Error;
use std::fmt;

use gaasx_core::CoreError;
use gaasx_sim::{Nanos, RunReport};

/// Why the server rejected or failed a query.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control found the bounded job queue full. Back off for
    /// `retry_after_ns` of modeled time — the earliest point a service
    /// lane frees up — and resubmit.
    Overloaded {
        /// Jobs waiting when the query arrived.
        queue_depth: usize,
        /// Configured queue bound.
        queue_capacity: usize,
        /// Modeled time until a service lane frees.
        retry_after_ns: Nanos,
    },
    /// The tenant's cumulative billed time reached its quota; the query
    /// was rejected before any work ran.
    QuotaExceeded {
        /// Tenant that hit its quota.
        tenant: String,
        /// Modeled time already billed to the tenant.
        billed_ns: Nanos,
        /// The tenant's configured quota.
        quota_ns: Nanos,
    },
    /// The query's modeled-time budget expired at a cooperative
    /// cancellation checkpoint (a block boundary). `report` carries the
    /// partial run accumulated up to the cancellation when the engine
    /// got far enough to produce one.
    DeadlineExceeded {
        /// The budget the query ran out of.
        deadline_ns: Nanos,
        /// Partial run report up to the cancellation point.
        report: Option<Box<RunReport>>,
    },
    /// Every retry attempt ended in an unrecoverable device fault.
    /// `report` is the partial report of the *last* attempt.
    DeviceFault {
        /// What failed and where (from the last attempt).
        detail: String,
        /// Attempts performed (initial try plus retries).
        attempts: u32,
        /// Partial run report of the last attempt.
        report: Option<Box<RunReport>>,
    },
    /// A worker panicked while executing the query. The panic was caught
    /// at the serve boundary, the worker's engines were replaced (wear
    /// carried over), and the server keeps serving.
    Internal {
        /// Id of the query whose worker panicked.
        query_id: u64,
        /// Panic payload rendered to text.
        detail: String,
    },
    /// The query referenced a graph never registered with the server.
    UnknownGraph {
        /// The graph name the query asked for.
        graph: String,
    },
    /// A graph registration exceeded the server's total bank capacity
    /// on its own — no eviction schedule could make it fit.
    CapacityExceeded {
        /// Edges in the rejected graph.
        edges: usize,
        /// Configured capacity in edges.
        capacity_edges: usize,
    },
    /// The query itself was invalid (bad source vertex, negative SSSP
    /// weights, empty batch, ...).
    Query(CoreError),
}

impl ServeError {
    /// The partial [`RunReport`] attached to this failure, if work ran
    /// before it — the billable remnant of a degraded query.
    pub fn partial_report(&self) -> Option<&RunReport> {
        match self {
            ServeError::DeadlineExceeded { report, .. }
            | ServeError::DeviceFault { report, .. } => report.as_deref(),
            ServeError::Query(
                CoreError::DeviceFault { report, .. } | CoreError::Cancelled { report, .. },
            ) => report.as_deref(),
            _ => None,
        }
    }

    /// `true` for rejections decided *before* any work ran (overload,
    /// quota, unknown graph, capacity) — these are never billed.
    pub fn is_rejection(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::QuotaExceeded { .. }
                | ServeError::UnknownGraph { .. }
                | ServeError::CapacityExceeded { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                queue_capacity,
                retry_after_ns,
            } => write!(
                f,
                "server overloaded: {queue_depth}/{queue_capacity} jobs queued; \
                 retry after {retry_after_ns} ns"
            ),
            ServeError::QuotaExceeded {
                tenant,
                billed_ns,
                quota_ns,
            } => write!(
                f,
                "tenant {tenant} exceeded its quota: {billed_ns} ns billed of {quota_ns} ns"
            ),
            ServeError::DeadlineExceeded {
                deadline_ns,
                report,
            } => write!(
                f,
                "deadline of {deadline_ns} ns exceeded{}",
                if report.is_some() {
                    " (partial report attached)"
                } else {
                    ""
                }
            ),
            ServeError::DeviceFault {
                detail, attempts, ..
            } => write!(f, "device fault after {attempts} attempt(s): {detail}"),
            ServeError::Internal { query_id, detail } => {
                write!(f, "internal error serving query {query_id}: {detail}")
            }
            ServeError::UnknownGraph { graph } => {
                write!(f, "graph {graph:?} is not registered with this server")
            }
            ServeError::CapacityExceeded {
                edges,
                capacity_edges,
            } => write!(
                f,
                "graph of {edges} edges exceeds the server capacity of {capacity_edges} edges"
            ),
            ServeError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_reports_surface_through_the_accessor() {
        let report = Box::new(RunReport::new("gaasx", "bfs", "t"));
        let e = ServeError::DeadlineExceeded {
            deadline_ns: Nanos::from_ns(100.0),
            report: Some(report),
        };
        assert_eq!(
            e.partial_report().map(|r| r.algorithm.as_str()),
            Some("bfs")
        );
        assert!(!e.is_rejection());

        let e = ServeError::Overloaded {
            queue_depth: 4,
            queue_capacity: 4,
            retry_after_ns: Nanos::from_ns(7.0),
        };
        assert!(e.partial_report().is_none());
        assert!(e.is_rejection());
        assert!(e.to_string().contains("retry after 7 ns"));
    }

    #[test]
    fn query_errors_pass_the_wrapped_partial_through() {
        let inner = CoreError::DeviceFault {
            detail: "row 3".into(),
            report: Some(Box::new(RunReport::new("gaasx", "sssp", "t"))),
        };
        let e = ServeError::from(inner);
        assert_eq!(
            e.partial_report().map(|r| r.algorithm.as_str()),
            Some("sssp")
        );
        assert!(std::error::Error::source(&e).is_some());
    }
}
