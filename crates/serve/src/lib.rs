//! # gaasx-serve — fault-tolerant multi-tenant serving for GaaS-X
//!
//! The accelerator crates answer "how fast is one run"; this crate
//! answers "what happens when many tenants share the device". A
//! [`Server`] keeps programmed graphs resident on crossbar banks across
//! queries and serves BFS/SSSP traffic under an explicit degradation
//! contract: bounded queues that shed load with typed retry hints,
//! per-query modeled-time deadlines with cooperative cancellation,
//! bounded device-fault retries with backoff, wear-aware LRU eviction,
//! panic isolation at the worker boundary, and exact per-tenant billing
//! through [`gaasx_sim::TenantLedger`].
//!
//! ```
//! use gaasx_core::GaasXConfig;
//! use gaasx_graph::generators;
//! use gaasx_serve::{QueryKind, QueryRequest, Server, ServerConfig};
//! use gaasx_sim::Nanos;
//!
//! let mut server = Server::new(ServerConfig::new(GaasXConfig::small()));
//! server.register_graph("fig7", generators::paper_fig7_graph())?;
//! server.submit(QueryRequest {
//!     tenant: "acme".into(),
//!     graph: "fig7".into(),
//!     kind: QueryKind::Bfs { source: 0 },
//!     arrival_ns: Nanos::ZERO,
//!     deadline_ns: None,
//! });
//! let responses = server.run();
//! assert!(responses[0].outcome.is_ok());
//! assert_eq!(server.ledger().billed_ns("acme"), responses[0].billed_ns);
//! # Ok::<(), gaasx_serve::ServeError>(())
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod error;
pub mod queue;
pub mod resident;
pub mod server;

pub use batch::{run_batch, BatchOutcome};
pub use error::ServeError;
pub use queue::BoundedQueue;
pub use resident::ResidentGraph;
pub use server::{
    QueryKind, QueryOutput, QueryRequest, QueryResponse, Server, ServerConfig, ServerStats,
};
