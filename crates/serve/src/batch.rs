//! Batched multi-source traversal: K BFS/SSSP queries against one
//! resident graph in a single selective-row-activation pass.
//!
//! The crossbar cost of a frontier traversal is dominated by block
//! programming: every superstep reloads each chunk that holds an active
//! source. When K queries target the *same* resident graph, one pass can
//! load each needed chunk once and run all K queries' CAM searches
//! against it — the searches are per-source row activations and never
//! interfere.
//!
//! # Bit-identity
//!
//! For each query `q`, the candidate stream the batch produces is exactly
//! the stream the one-shot run produces: a chunk contributes candidates
//! to `q` only when `q`'s frontier intersects it (the one-shot load
//! condition), sources iterate in the same `distinct_srcs` order, and the
//! sequential reduce folds shards and candidates in the same order with
//! the same SFU float ops. Distances therefore evolve bit-identically —
//! [`run_batch`] of K sources returns the same values and iteration
//! counts as K one-shot runs. (This holds whenever block programming is
//! deterministic, i.e. fault-free or stuck-only fault models; transient
//! write faults draw from the engine RNG per programming event, and a
//! batch programs fewer blocks.)
//!
//! What changes is the *cost*: shared chunk loads make the batch strictly
//! cheaper than the sum of its one-shot parts on any graph where sources
//! share blocks.

use gaasx_graph::partition::TraversalOrder;
use gaasx_graph::{CooGraph, Edge, VertexId};
use gaasx_xbar::fixed::Quantizer;

use gaasx_core::engine::{partition_for_streaming, CellLayout};
use gaasx_core::{CoreError, ShardRunner};

/// Largest distance encodable as a 16-bit MAC input code (same device
/// limit the one-shot BFS/SSSP mappings enforce).
const MAX_ENCODABLE_DIST: f64 = 65_534.0;

/// Result of a batched multi-source traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Per-query distance vectors, indexed like `sources`.
    pub values: Vec<Vec<f64>>,
    /// Per-query superstep counts — identical to what the one-shot run
    /// of that source would report.
    pub iterations: Vec<u32>,
}

/// Runs BFS (`weighted == false`) or SSSP (`weighted == true`) from every
/// vertex in `sources` over `graph`, sharing block loads across queries.
///
/// # Errors
///
/// Returns [`CoreError::InvalidInput`] for an empty batch, an
/// out-of-range source, or (SSSP) negative edge weights; propagates
/// device errors from the engine.
pub fn run_batch<R: ShardRunner>(
    runner: &mut R,
    graph: &CooGraph,
    weighted: bool,
    sources: &[VertexId],
) -> Result<BatchOutcome, CoreError> {
    let n = graph.num_vertices() as usize;
    let k = sources.len();
    if k == 0 {
        return Err(CoreError::InvalidInput(
            "batch query carries no source vertices".into(),
        ));
    }
    for source in sources {
        if source.index() >= n {
            return Err(CoreError::InvalidInput(format!(
                "source {source} out of range for {n} vertices"
            )));
        }
    }
    let w_quant = if weighted {
        for e in graph.iter() {
            if e.weight < 0.0 {
                return Err(CoreError::InvalidInput(format!(
                    "negative edge weight on {e}; shortest paths require non-negative weights"
                )));
            }
        }
        Some(Quantizer::new(1.0, runner.engine().weight_bits())?)
    } else {
        // BFS: all weight cells read as 1; set once, never per edge.
        runner.preset_mac(1)?;
        None
    };
    let grid = partition_for_streaming(graph)?;
    let capacity = runner.engine().block_capacity();

    let mut dist: Vec<Vec<f64>> = vec![vec![f64::INFINITY; n]; k];
    let mut frontier: Vec<Vec<bool>> = vec![vec![false; n]; k];
    for (q, source) in sources.iter().enumerate() {
        dist[q][source.index()] = 0.0;
        frontier[q][source.index()] = true;
    }
    let mut iterations = vec![0u32; k];
    let mut done = vec![false; k];
    // The V−1 Bellman–Ford bound the one-shot SSSP loop runs under; BFS
    // terminates naturally (hop counts only ever shrink once).
    let bound = (n as u32).saturating_sub(1).max(1);

    loop {
        let active: Vec<bool> = (0..k)
            .map(|q| !done[q] && (!weighted || iterations[q] < bound))
            .collect();
        if !active.iter().any(|&a| a) {
            break;
        }

        let dist_snapshot = &dist;
        let frontier_snapshot = &frontier;
        let active_snapshot = &active;
        let candidates =
            runner.for_each_shard(&grid, TraversalOrder::RowMajor, |engine, shard| {
                let mut cands: Vec<Vec<(u32, f64)>> = vec![Vec::new(); k];
                let mut hits = gaasx_xbar::HitVector::new(0);
                let mut results: Vec<(usize, u64)> = Vec::new();
                for chunk in shard.edges().chunks(capacity) {
                    // One load serves every query with a frontier source
                    // in the chunk; queries without one contribute no
                    // searches — exactly the one-shot skip condition.
                    let wanted = |q: usize| {
                        active_snapshot[q]
                            && chunk.iter().any(|e| frontier_snapshot[q][e.src.index()])
                    };
                    if !(0..k).any(wanted) {
                        continue;
                    }
                    let cells = |e: &Edge, c: &mut Vec<u32>| {
                        // `wanted` guarantees `w_quant` is Some on this path.
                        if let Some(q) = &w_quant {
                            c.extend_from_slice(&[q.encode(e.weight), 1]);
                        }
                    };
                    let layout = if weighted {
                        CellLayout::PerEdge(&cells)
                    } else {
                        CellLayout::Preset
                    };
                    let block = engine.load_block(chunk, layout)?;
                    for (q, q_cands) in cands.iter_mut().enumerate() {
                        if !wanted(q) {
                            continue;
                        }
                        for &src in block.distinct_srcs() {
                            if !frontier_snapshot[q][src.index()] {
                                continue;
                            }
                            let d = dist_snapshot[q][src.index()];
                            engine.attr_read(8);
                            let encodable = if weighted {
                                d.is_finite() && d <= MAX_ENCODABLE_DIST
                            } else {
                                d <= MAX_ENCODABLE_DIST
                            };
                            if !encodable {
                                continue;
                            }
                            engine.search_src_into(src, &mut hits);
                            engine.propagate_rows_into(
                                &hits,
                                &[0, 1],
                                &[1, d.round() as u32],
                                &mut results,
                            )?;
                            for &(row, sum) in &results {
                                q_cands.push((block.edge(row).dst.raw(), sum as f64));
                            }
                        }
                    }
                }
                Ok(cands)
            })?;

        let engine = runner.engine();
        for q in 0..k {
            if !active[q] {
                continue;
            }
            let mut next = vec![false; n];
            let mut changed = false;
            for shard_cands in &candidates {
                for &(dst, cand) in &shard_cands[q] {
                    let v = dst as usize;
                    if engine.sfu_less_than(cand, dist[q][v]) {
                        dist[q][v] = engine.sfu_min(cand, dist[q][v]);
                        engine.attr_write(8);
                        next[v] = true;
                        changed = true;
                    }
                }
            }
            iterations[q] += 1;
            if changed {
                frontier[q] = next;
            } else {
                done[q] = true;
            }
        }
    }
    // Each query drains its own distance vector through the output buffer.
    runner.engine().output_write(8 * n as u64 * k as u64);

    Ok(BatchOutcome {
        values: dist,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaasx_core::algorithms::{Bfs, ShardableAlgorithm, Sssp};
    use gaasx_core::engine::Engine;
    use gaasx_core::GaasXConfig;
    use gaasx_graph::generators;

    fn rmat(edges: usize, seed: u64) -> CooGraph {
        generators::rmat(&generators::RmatConfig::new(1 << 6, edges).with_seed(seed)).unwrap()
    }

    #[test]
    fn batch_matches_one_shot_values_and_iterations() {
        let g = rmat(500, 3);
        for weighted in [false, true] {
            let sources: Vec<VertexId> = [0u32, 1, 5].iter().map(|&s| VertexId::new(s)).collect();
            let mut engine = Engine::new(GaasXConfig::small()).unwrap();
            let batch = run_batch(&mut engine, &g, weighted, &sources).unwrap();
            for (q, &source) in sources.iter().enumerate() {
                let mut one = Engine::new(GaasXConfig::small()).unwrap();
                let run = if weighted {
                    Sssp::from_source(source).execute_on(&mut one, &g).unwrap()
                } else {
                    Bfs::from_source(source).execute_on(&mut one, &g).unwrap()
                };
                assert_eq!(batch.values[q], run.output, "weighted={weighted} q={q}");
                assert_eq!(
                    batch.iterations[q], run.iterations,
                    "weighted={weighted} q={q}"
                );
            }
        }
    }

    #[test]
    fn batch_is_cheaper_than_the_serial_sum() {
        let g = rmat(600, 7);
        let sources: Vec<VertexId> = [0u32, 2, 3, 9].iter().map(|&s| VertexId::new(s)).collect();
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        run_batch(&mut engine, &g, true, &sources).unwrap();
        let batch_ns = engine
            .finish("gaasx", "sssp_batch", "t", 1, g.num_edges() as u64)
            .elapsed_ns;

        let mut serial_ns = gaasx_sim::Nanos::ZERO;
        for &source in &sources {
            let mut one = Engine::new(GaasXConfig::small()).unwrap();
            Sssp::from_source(source).execute_on(&mut one, &g).unwrap();
            serial_ns += one
                .finish("gaasx", "sssp", "t", 1, g.num_edges() as u64)
                .elapsed_ns;
        }
        assert!(
            batch_ns < serial_ns,
            "batch {batch_ns} ns should beat serial {serial_ns} ns"
        );
    }

    #[test]
    fn rejects_bad_batches() {
        let g = generators::path_graph(4);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        assert!(run_batch(&mut engine, &g, false, &[]).is_err());
        assert!(run_batch(&mut engine, &g, false, &[VertexId::new(9)]).is_err());
        let neg = CooGraph::from_edges(2, vec![Edge::new(0, 1, -2.0)]).unwrap();
        assert!(run_batch(&mut engine, &neg, true, &[VertexId::new(0)]).is_err());
    }

    #[test]
    fn duplicate_sources_stay_independent() {
        let g = generators::path_graph(5);
        let mut engine = Engine::new(GaasXConfig::small()).unwrap();
        let sources = [VertexId::new(1), VertexId::new(1)];
        let batch = run_batch(&mut engine, &g, false, &sources).unwrap();
        assert_eq!(batch.values[0], batch.values[1]);
        assert_eq!(batch.iterations[0], batch.iterations[1]);
    }
}
