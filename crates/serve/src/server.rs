//! The multi-tenant query server.
//!
//! [`Server`] keeps registered graphs resident on crossbar banks and
//! serves BFS/SSSP queries (single-source or batched) against them under
//! a fault-tolerance contract:
//!
//! * **Admission control** — a [`BoundedQueue`] in front of a fixed set
//!   of modeled service lanes; a full queue sheds load with
//!   [`ServeError::Overloaded`] carrying a retry-after hint, and tenants
//!   past their billed-time quota are rejected with
//!   [`ServeError::QuotaExceeded`]. Rejections are never billed.
//! * **Deadlines** — per-query modeled-time budgets enforced at
//!   cooperative block-boundary checkpoints; a miss returns
//!   [`ServeError::DeadlineExceeded`] with the partial
//!   [`gaasx_sim::RunReport`], and the partial work is billed.
//! * **Retries** — unrecoverable device faults retry up to a bounded
//!   budget with modeled backoff; every attempt's partial work is billed
//!   and the final failure reports the attempt count.
//! * **Panic isolation** — a `catch_unwind` guard at the worker boundary
//!   turns an escaped panic into [`ServeError::Internal`] and replaces
//!   the worker's engines (endurance wear carried over); the server
//!   keeps serving.
//! * **Eviction** — LRU over total resident edges plus a wear threshold;
//!   an evicted graph transparently reprograms on its next query.
//!
//! # Determinism
//!
//! The server spawns no threads of its own: host-side parallelism comes
//! from each resident [`gaasx_core::ShardedEngine`], and *service*
//! concurrency is modeled as lane free-times on the modeled clock. Given
//! the same registrations and submissions, `run` produces bit-identical
//! responses, bills, and ledger totals on every host.
//!
//! # Billing conservation
//!
//! Every admitted query produces exactly one
//! [`TenantLedger::record_billed`] call, in response-completion order.
//! Summing each response's `billed_ns` per tenant in that order and
//! folding tenants lexicographically reproduces
//! [`TenantLedger::total_billed_ns`] bit-exactly — the soak harness
//! asserts this.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use gaasx_graph::CooGraph;
use gaasx_sim::{Nanojoules, Nanos, OpSummary, RunReport, TenantLedger};

use gaasx_core::{CoreError, GaasXConfig};

use crate::error::ServeError;
use crate::queue::BoundedQueue;
use crate::resident::ResidentGraph;

/// What a query asks the accelerator to compute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// Breadth-first search from one source.
    Bfs {
        /// Source vertex.
        source: u32,
    },
    /// Single-source shortest paths from one source.
    Sssp {
        /// Source vertex.
        source: u32,
    },
    /// K BFS queries sharing one selective-row-activation pass.
    BatchBfs {
        /// Source vertices, one sub-query each.
        sources: Vec<u32>,
    },
    /// K SSSP queries sharing one selective-row-activation pass.
    BatchSssp {
        /// Source vertices, one sub-query each.
        sources: Vec<u32>,
    },
    /// Fault-injection probe: panics inside the worker. Exists so tests
    /// and the soak harness can prove the `catch_unwind` boundary holds.
    DebugPanic,
}

/// A query submitted to the server.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Tenant the query bills to.
    pub tenant: String,
    /// Registered graph name to run against.
    pub graph: String,
    /// What to compute.
    pub kind: QueryKind,
    /// Arrival time on the modeled clock.
    pub arrival_ns: Nanos,
    /// Per-query modeled-time budget; `None` falls back to
    /// [`ServerConfig::default_deadline_ns`].
    pub deadline_ns: Option<Nanos>,
}

/// Successful query output.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Per-source distance vectors (length 1 for single-source queries).
    pub values: Vec<Vec<f64>>,
    /// Per-source superstep counts.
    pub iterations: Vec<u32>,
    /// The full run report the bill derives from.
    pub report: RunReport,
}

/// The server's answer to one submitted query.
#[derive(Debug)]
pub struct QueryResponse {
    /// Id assigned at submission.
    pub id: u64,
    /// Tenant billed.
    pub tenant: String,
    /// Graph queried.
    pub graph: String,
    /// Submission time on the modeled clock.
    pub arrival_ns: Nanos,
    /// When a service lane picked the query up (equals `arrival_ns` for
    /// rejections).
    pub start_ns: Nanos,
    /// When the lane freed (start plus billed time plus retry backoff).
    pub finish_ns: Nanos,
    /// Modeled device time billed to the tenant for this query.
    pub billed_ns: Nanos,
    /// The result or the typed failure.
    pub outcome: Result<QueryOutput, ServeError>,
}

/// Serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Device configuration each resident graph's engines are built from.
    pub accel: GaasXConfig,
    /// Worker threads per resident [`gaasx_core::ShardedEngine`].
    pub jobs: usize,
    /// Bound of the admission queue; beyond it the server sheds load.
    pub queue_capacity: usize,
    /// Modeled service lanes draining the queue concurrently.
    pub lanes: usize,
    /// Total edges that may be resident at once; past it the LRU graph
    /// is evicted.
    pub capacity_edges: usize,
    /// Evict (and so reprogram onto fresh banks) a resident graph once
    /// its engines' total device writes reach this; `u64::MAX` disables.
    pub wear_threshold_writes: u64,
    /// Retries after the initial attempt for device-fault failures.
    pub max_retries: u32,
    /// Modeled backoff added to the lane occupancy per retry.
    pub retry_backoff_ns: Nanos,
    /// Deadline for queries that do not carry their own.
    pub default_deadline_ns: Option<Nanos>,
}

impl ServerConfig {
    /// A permissive policy around the given device configuration:
    /// 2 lanes, an 8-deep queue, no capacity/wear/deadline limits,
    /// 2 retries with 1 µs backoff.
    pub fn new(accel: GaasXConfig) -> Self {
        ServerConfig {
            accel,
            jobs: 1,
            queue_capacity: 8,
            lanes: 2,
            capacity_edges: usize::MAX,
            wear_threshold_writes: u64::MAX,
            max_retries: 2,
            retry_backoff_ns: Nanos::from_ns(1_000.0),
            default_deadline_ns: None,
        }
    }
}

/// Monotonic counters describing everything the server did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Queries past admission control.
    pub admitted: u64,
    /// Queries that returned results.
    pub completed: u64,
    /// Load-shed rejections.
    pub rejected_overload: u64,
    /// Quota rejections.
    pub rejected_quota: u64,
    /// Unknown-graph rejections.
    pub rejected_unknown: u64,
    /// Admitted queries that missed their deadline.
    pub failed_deadline: u64,
    /// Admitted queries whose retry budget ended in a device fault.
    pub failed_fault: u64,
    /// Admitted queries that failed validation or configuration.
    pub failed_query: u64,
    /// Admitted queries whose worker panicked.
    pub failed_internal: u64,
    /// Device-fault retry attempts performed.
    pub retries: u64,
    /// Graphs programmed onto banks after an eviction (first-time
    /// programming is not counted).
    pub reprograms: u64,
    /// Evictions forced by the resident-edge capacity.
    pub capacity_evictions: u64,
    /// Evictions forced by the wear threshold.
    pub wear_evictions: u64,
    /// Panics caught at the worker boundary.
    pub panics_caught: u64,
    /// Worker engine sets replaced after a panic.
    pub worker_replacements: u64,
}

/// A multi-tenant query server over resident crossbar banks — see the
/// module docs for the full contract.
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    graphs: BTreeMap<String, ResidentGraph>,
    quotas: BTreeMap<String, Nanos>,
    pending: Vec<(u64, QueryRequest)>,
    next_id: u64,
    dispatch_seq: u64,
    ledger: TenantLedger,
    stats: ServerStats,
}

impl Server {
    /// A server with the given policy and no graphs or queries yet.
    pub fn new(config: ServerConfig) -> Self {
        Server {
            config,
            graphs: BTreeMap::new(),
            quotas: BTreeMap::new(),
            pending: Vec::new(),
            next_id: 0,
            dispatch_seq: 0,
            ledger: TenantLedger::new(),
            stats: ServerStats::default(),
        }
    }

    /// Registers `graph` under `name` (replacing any previous
    /// registration of that name). Banks are programmed lazily on the
    /// first query.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::CapacityExceeded`] when the graph alone
    /// exceeds [`ServerConfig::capacity_edges`] — no eviction schedule
    /// could ever make it fit.
    pub fn register_graph(&mut self, name: &str, graph: CooGraph) -> Result<(), ServeError> {
        if graph.num_edges() > self.config.capacity_edges {
            return Err(ServeError::CapacityExceeded {
                edges: graph.num_edges(),
                capacity_edges: self.config.capacity_edges,
            });
        }
        self.graphs.insert(
            name.to_string(),
            ResidentGraph::new(
                name.to_string(),
                graph,
                self.config.accel.clone(),
                self.config.jobs,
            ),
        );
        Ok(())
    }

    /// Caps `tenant`'s cumulative billed modeled time; once reached,
    /// further queries are rejected with [`ServeError::QuotaExceeded`].
    pub fn set_quota(&mut self, tenant: &str, quota_ns: Nanos) {
        self.quotas.insert(tenant.to_string(), quota_ns);
    }

    /// Enqueues a query for the next [`run`](Server::run) and returns
    /// its assigned id.
    pub fn submit(&mut self, request: QueryRequest) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push((id, request));
        id
    }

    /// The per-tenant billing ledger.
    pub fn ledger(&self) -> &TenantLedger {
        &self.ledger
    }

    /// Serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The registered graph record for `name`.
    pub fn graph(&self, name: &str) -> Option<&ResidentGraph> {
        self.graphs.get(name)
    }

    /// Drains every submitted query through the admission/dispatch loop
    /// and returns one response per query, in completion order
    /// (rejections complete at arrival; dispatched queries complete when
    /// their lane frees).
    pub fn run(&mut self) -> Vec<QueryResponse> {
        let mut arrivals = std::mem::take(&mut self.pending);
        arrivals.sort_by(|a, b| a.1.arrival_ns.total_cmp(&b.1.arrival_ns));

        let mut lanes = vec![Nanos::ZERO; self.config.lanes.max(1)];
        let mut queue: BoundedQueue<(u64, QueryRequest)> =
            BoundedQueue::new(self.config.queue_capacity);
        let mut responses = Vec::with_capacity(arrivals.len());

        for (id, request) in arrivals {
            let now = request.arrival_ns;
            // Lanes that freed before this arrival drain the queue first.
            while !queue.is_empty() {
                let (lane, free_at) = Self::earliest_lane(&lanes);
                if free_at > now {
                    break;
                }
                if let Some((qid, qreq)) = queue.pop() {
                    let response = self.dispatch(qid, qreq, free_at);
                    lanes[lane] = response.finish_ns;
                    responses.push(response);
                }
            }

            if let Some(rejection) = self.admission_rejection(&request, &queue, &lanes) {
                self.stats_for_rejection(&rejection);
                self.ledger.record_rejected(&request.tenant);
                responses.push(QueryResponse {
                    id,
                    tenant: request.tenant.clone(),
                    graph: request.graph.clone(),
                    arrival_ns: now,
                    start_ns: now,
                    finish_ns: now,
                    billed_ns: Nanos::ZERO,
                    outcome: Err(rejection),
                });
                continue;
            }

            let (lane, free_at) = Self::earliest_lane(&lanes);
            if queue.is_empty() && free_at <= now {
                let response = self.dispatch(id, request, now);
                lanes[lane] = response.finish_ns;
                responses.push(response);
            } else if let Err((id, request)) = queue.push((id, request)) {
                // Full queue: shed load with a typed rejection. All lanes
                // are busy past `now` here, so the hint is positive.
                let retry_after_ns = free_at - now;
                self.stats.rejected_overload += 1;
                self.ledger.record_rejected(&request.tenant);
                responses.push(QueryResponse {
                    id,
                    tenant: request.tenant.clone(),
                    graph: request.graph.clone(),
                    arrival_ns: now,
                    start_ns: now,
                    finish_ns: now,
                    billed_ns: Nanos::ZERO,
                    outcome: Err(ServeError::Overloaded {
                        queue_depth: queue.len(),
                        queue_capacity: queue.capacity(),
                        retry_after_ns,
                    }),
                });
            }
        }

        // No more arrivals: lanes drain the queue to empty.
        while let Some((id, request)) = queue.pop() {
            let (lane, free_at) = Self::earliest_lane(&lanes);
            let response = self.dispatch(id, request, free_at);
            lanes[lane] = response.finish_ns;
            responses.push(response);
        }
        responses
    }

    /// The lane that frees first (ties break to the lowest index).
    fn earliest_lane(lanes: &[Nanos]) -> (usize, Nanos) {
        let mut best = 0;
        for (i, free_at) in lanes.iter().enumerate() {
            if free_at.total_cmp(&lanes[best]) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        (best, lanes[best])
    }

    /// Pre-dispatch rejection checks (unknown graph, quota). Overload is
    /// decided at enqueue time by the caller.
    fn admission_rejection(
        &self,
        request: &QueryRequest,
        _queue: &BoundedQueue<(u64, QueryRequest)>,
        _lanes: &[Nanos],
    ) -> Option<ServeError> {
        if !self.graphs.contains_key(&request.graph) {
            return Some(ServeError::UnknownGraph {
                graph: request.graph.clone(),
            });
        }
        if let Some(&quota_ns) = self.quotas.get(&request.tenant) {
            let billed_ns = self.ledger.billed_ns(&request.tenant);
            if billed_ns >= quota_ns {
                return Some(ServeError::QuotaExceeded {
                    tenant: request.tenant.clone(),
                    billed_ns,
                    quota_ns,
                });
            }
        }
        None
    }

    fn stats_for_rejection(&mut self, rejection: &ServeError) {
        match rejection {
            ServeError::UnknownGraph { .. } => self.stats.rejected_unknown += 1,
            ServeError::QuotaExceeded { .. } => self.stats.rejected_quota += 1,
            _ => self.stats.rejected_overload += 1,
        }
    }

    /// Evicts least-recently-used resident graphs until `graph` fits
    /// within the resident-edge capacity alongside them.
    fn make_room_for(&mut self, graph: &str) {
        loop {
            let mut resident_edges = 0usize;
            let mut lru: Option<(u64, String)> = None;
            for (name, g) in &self.graphs {
                let counts = g.is_resident() || name == graph;
                if !counts {
                    continue;
                }
                resident_edges = resident_edges.saturating_add(g.num_edges());
                if g.is_resident() && name != graph {
                    let key = (g.last_used(), name.clone());
                    if lru.as_ref().map_or(true, |best| key < *best) {
                        lru = Some(key);
                    }
                }
            }
            if resident_edges <= self.config.capacity_edges {
                return;
            }
            match lru {
                Some((_, victim)) => {
                    if let Some(g) = self.graphs.get_mut(&victim) {
                        g.evict();
                    }
                    self.stats.capacity_evictions += 1;
                }
                // Only the target remains; registration guaranteed it
                // fits alone.
                None => return,
            }
        }
    }

    /// Executes one admitted query at modeled time `start_ns`: residency,
    /// panic guard, retry loop, wear policy, and billing.
    fn dispatch(&mut self, id: u64, request: QueryRequest, start_ns: Nanos) -> QueryResponse {
        self.dispatch_seq += 1;
        let seq = self.dispatch_seq;
        self.stats.admitted += 1;
        self.make_room_for(&request.graph);

        let deadline = request.deadline_ns.or(self.config.default_deadline_ns);
        let mut billed_ns = Nanos::ZERO;
        let mut energy_nj = Nanojoules::ZERO;
        let mut ops = OpSummary::new();
        let mut backoff_ns = Nanos::ZERO;
        let mut attempts = 0u32;

        let outcome = loop {
            let Some(g) = self.graphs.get_mut(&request.graph) else {
                break Err(ServeError::UnknownGraph {
                    graph: request.graph.clone(),
                });
            };
            let newly_programmed = match g.ensure_resident() {
                Ok(programmed) => programmed,
                Err(e) => break Err(ServeError::Query(e)),
            };
            if newly_programmed && g.programs() > 1 {
                self.stats.reprograms += 1;
            }
            g.touch(seq);
            attempts += 1;

            match catch_unwind(AssertUnwindSafe(|| g.run_query(&request.kind, deadline))) {
                Err(payload) => {
                    // The worker tore down mid-query: replace its engines
                    // (same banks, wear carried over) and keep serving.
                    self.stats.panics_caught += 1;
                    let detail = panic_detail(payload.as_ref());
                    if g.replace_after_panic().is_ok() {
                        self.stats.worker_replacements += 1;
                    } else {
                        g.evict();
                    }
                    break Err(ServeError::Internal {
                        query_id: id,
                        detail,
                    });
                }
                Ok(Ok(output)) => {
                    billed_ns += output.report.elapsed_ns;
                    energy_nj += output.report.energy.total_nj();
                    ops.merge(&output.report.ops);
                    break Ok(output);
                }
                Ok(Err(e)) => {
                    if let Some(partial) = partial_of(&e) {
                        billed_ns += partial.elapsed_ns;
                        energy_nj += partial.energy.total_nj();
                        ops.merge(&partial.ops);
                    }
                    match e {
                        CoreError::Cancelled { report, .. } => {
                            break Err(ServeError::DeadlineExceeded {
                                deadline_ns: deadline.unwrap_or(Nanos::ZERO),
                                report,
                            });
                        }
                        CoreError::DeviceFault { detail, report } => {
                            if attempts <= self.config.max_retries {
                                self.stats.retries += 1;
                                backoff_ns += self.config.retry_backoff_ns;
                                continue;
                            }
                            break Err(ServeError::DeviceFault {
                                detail,
                                attempts,
                                report,
                            });
                        }
                        other => break Err(ServeError::Query(other)),
                    }
                }
            }
        };

        // Wear policy: once the resident banks' total writes cross the
        // threshold, evict so the next query reprograms fresh banks.
        if let Some(g) = self.graphs.get_mut(&request.graph) {
            if g.is_resident() && g.wear_total() >= self.config.wear_threshold_writes {
                g.evict();
                self.stats.wear_evictions += 1;
            }
        }

        match &outcome {
            Ok(_) => self.stats.completed += 1,
            Err(ServeError::DeadlineExceeded { .. }) => self.stats.failed_deadline += 1,
            Err(ServeError::DeviceFault { .. }) => self.stats.failed_fault += 1,
            Err(ServeError::Internal { .. }) => self.stats.failed_internal += 1,
            Err(_) => self.stats.failed_query += 1,
        }
        // Exactly one billing event per admitted query, partial or not.
        self.ledger
            .record_billed(&request.tenant, billed_ns, energy_nj, &ops);
        if outcome.is_ok() {
            self.ledger.record_completed(&request.tenant);
        } else {
            self.ledger.record_failed(&request.tenant);
        }

        QueryResponse {
            id,
            tenant: request.tenant,
            graph: request.graph,
            arrival_ns: request.arrival_ns,
            start_ns,
            finish_ns: start_ns + billed_ns + backoff_ns,
            billed_ns,
            outcome,
        }
    }
}

/// The partial report carried by a failed attempt, if any.
fn partial_of(e: &CoreError) -> Option<&RunReport> {
    match e {
        CoreError::DeviceFault { report, .. } | CoreError::Cancelled { report, .. } => {
            report.as_deref()
        }
        _ => None,
    }
}

/// Renders a caught panic payload to text.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}
