//! Integration tests of the serving contract: typed rejection, deadline
//! misses with partial reports, bounded retries, panic isolation, wear
//! and capacity eviction, batching, and exact per-tenant billing.

#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;

use gaasx_core::algorithms::{Bfs, Sssp};
use gaasx_core::{GaasX, GaasXConfig, RecoveryPolicy};
use gaasx_graph::{generators, CooGraph, VertexId};
use gaasx_serve::{QueryKind, QueryRequest, ServeError, Server, ServerConfig};
use gaasx_sim::Nanos;
use gaasx_xbar::FaultModel;

fn rmat(edges: usize, seed: u64) -> CooGraph {
    generators::rmat(&generators::RmatConfig::new(1 << 6, edges).with_seed(seed)).unwrap()
}

fn request(tenant: &str, graph: &str, kind: QueryKind, arrival: f64) -> QueryRequest {
    QueryRequest {
        tenant: tenant.into(),
        graph: graph.into(),
        kind,
        arrival_ns: Nanos::from_ns(arrival),
        deadline_ns: None,
    }
}

#[test]
fn resident_queries_match_one_shot_runs_bit_for_bit() {
    let g = rmat(500, 3);
    for jobs in [1, 2, 4] {
        let mut config = ServerConfig::new(GaasXConfig::small());
        config.jobs = jobs;
        let mut server = Server::new(config);
        server.register_graph("g", g.clone()).unwrap();
        // Two identical queries: the second runs on warm resident banks.
        for i in 0..2 {
            server.submit(request(
                "acme",
                "g",
                QueryKind::Sssp { source: 1 },
                i as f64,
            ));
        }
        let responses = server.run();

        let one_shot = GaasX::new(GaasXConfig::small())
            .run_labeled_sharded(&Sssp::from_source(VertexId::new(1)), &g, "g", jobs)
            .unwrap();
        for (i, response) in responses.iter().enumerate() {
            let output = response.outcome.as_ref().unwrap();
            assert_eq!(output.values[0], one_shot.result, "jobs={jobs} query={i}");
            assert_eq!(
                output.report.ops, one_shot.report.ops,
                "jobs={jobs} query={i}"
            );
            assert_eq!(
                output.report.elapsed_ns, one_shot.report.elapsed_ns,
                "jobs={jobs} query={i}"
            );
            assert_eq!(
                output.report.energy.total_nj(),
                one_shot.report.energy.total_nj(),
                "jobs={jobs} query={i}"
            );
        }
        assert_eq!(server.graph("g").unwrap().programs(), 1, "jobs={jobs}");
    }
}

#[test]
fn a_worker_panic_is_caught_and_the_server_keeps_serving() {
    let mut server = Server::new(ServerConfig::new(GaasXConfig::small()));
    server.register_graph("g", rmat(300, 5)).unwrap();
    let before = server.submit(request("acme", "g", QueryKind::Bfs { source: 0 }, 0.0));
    let boom = server.submit(request("acme", "g", QueryKind::DebugPanic, 1e9));
    let after = server.submit(request("acme", "g", QueryKind::Bfs { source: 0 }, 2e9));
    let responses = server.run();

    let ok_before = responses
        .iter()
        .find(|r| r.id == before)
        .unwrap()
        .outcome
        .as_ref()
        .unwrap()
        .clone();
    match &responses.iter().find(|r| r.id == boom).unwrap().outcome {
        Err(ServeError::Internal { query_id, detail }) => {
            assert_eq!(*query_id, boom);
            assert!(detail.contains("deliberate debug panic"), "{detail}");
        }
        other => panic!("want Internal, got {other:?}"),
    }
    // The replacement worker serves the same results as before the panic.
    let ok_after = responses
        .iter()
        .find(|r| r.id == after)
        .unwrap()
        .outcome
        .as_ref()
        .unwrap();
    assert_eq!(ok_after.values, ok_before.values);
    assert_eq!(ok_after.report.ops, ok_before.report.ops);

    let stats = server.stats();
    assert_eq!(stats.panics_caught, 1);
    assert_eq!(stats.worker_replacements, 1);
    assert_eq!(stats.failed_internal, 1);
    assert_eq!(stats.completed, 2);
}

#[test]
fn overload_sheds_load_with_typed_retry_hints() {
    let mut config = ServerConfig::new(GaasXConfig::small());
    config.lanes = 1;
    config.queue_capacity = 1;
    let mut server = Server::new(config);
    server.register_graph("g", rmat(400, 7)).unwrap();
    // Four simultaneous arrivals against one lane and a one-deep queue:
    // one runs, one queues, two shed.
    for _ in 0..4 {
        server.submit(request("acme", "g", QueryKind::Bfs { source: 0 }, 0.0));
    }
    let responses = server.run();
    assert_eq!(responses.len(), 4);

    let overloaded: Vec<_> = responses
        .iter()
        .filter_map(|r| match &r.outcome {
            Err(ServeError::Overloaded {
                queue_depth,
                queue_capacity,
                retry_after_ns,
            }) => Some((*queue_depth, *queue_capacity, *retry_after_ns)),
            _ => None,
        })
        .collect();
    assert_eq!(overloaded.len(), 2);
    for (depth, capacity, retry_after) in overloaded {
        assert_eq!((depth, capacity), (1, 1));
        assert!(retry_after > Nanos::ZERO, "hint must be actionable");
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.rejected_overload, 2);
    // Rejected queries are never billed.
    assert_eq!(server.ledger().usage("acme").unwrap().rejected, 2);
    assert_eq!(server.ledger().usage("acme").unwrap().admitted, 2);
}

#[test]
fn quota_exhaustion_rejects_before_any_work() {
    let mut server = Server::new(ServerConfig::new(GaasXConfig::small()));
    server.register_graph("g", rmat(400, 9)).unwrap();
    server.set_quota("miser", Nanos::from_ns(1.0));
    server.submit(request("miser", "g", QueryKind::Bfs { source: 0 }, 0.0));
    server.submit(request("miser", "g", QueryKind::Bfs { source: 0 }, 1e9));
    let responses = server.run();

    assert!(responses[0].outcome.is_ok());
    let billed_after_first = server.ledger().billed_ns("miser");
    assert!(billed_after_first > Nanos::ZERO);
    match &responses[1].outcome {
        Err(ServeError::QuotaExceeded {
            tenant,
            billed_ns,
            quota_ns,
        }) => {
            assert_eq!(tenant, "miser");
            assert_eq!(*billed_ns, billed_after_first);
            assert_eq!(*quota_ns, Nanos::from_ns(1.0));
        }
        other => panic!("want QuotaExceeded, got {other:?}"),
    }
    // The rejection itself cost nothing.
    assert_eq!(server.ledger().billed_ns("miser"), billed_after_first);
    assert_eq!(server.stats().rejected_quota, 1);
}

#[test]
fn deadline_misses_return_and_bill_the_partial_report() {
    let mut server = Server::new(ServerConfig::new(GaasXConfig::small()));
    server.register_graph("g", rmat(600, 11)).unwrap();
    let mut req = request("acme", "g", QueryKind::Sssp { source: 0 }, 0.0);
    req.deadline_ns = Some(Nanos::from_ns(1.0));
    server.submit(req);
    let responses = server.run();

    match &responses[0].outcome {
        Err(ServeError::DeadlineExceeded {
            deadline_ns,
            report: Some(report),
        }) => {
            assert_eq!(*deadline_ns, Nanos::from_ns(1.0));
            // The partial work is real and billed.
            assert!(report.elapsed_ns > Nanos::ZERO);
            assert_eq!(responses[0].billed_ns, report.elapsed_ns);
            assert_eq!(server.ledger().billed_ns("acme"), report.elapsed_ns);
        }
        other => panic!("want DeadlineExceeded with report, got {other:?}"),
    }
    assert_eq!(server.stats().failed_deadline, 1);
    assert_eq!(server.ledger().usage("acme").unwrap().failed, 1);

    // A server-wide default deadline applies to queries without one.
    let mut config = ServerConfig::new(GaasXConfig::small());
    config.default_deadline_ns = Some(Nanos::from_ns(1.0));
    let mut server = Server::new(config);
    server.register_graph("g", rmat(600, 11)).unwrap();
    server.submit(request("acme", "g", QueryKind::Sssp { source: 0 }, 0.0));
    let responses = server.run();
    assert!(matches!(
        responses[0].outcome,
        Err(ServeError::DeadlineExceeded { .. })
    ));
}

#[test]
fn transient_device_faults_retry_and_succeed() {
    // Chosen so the first attempt write-faults under detect-only recovery
    // but a retry's fresh RNG draws succeed (deterministic per seed).
    let accel = GaasXConfig {
        fault: FaultModel {
            seed: 7,
            write_fail_rate: 5e-4,
            ..FaultModel::none()
        },
        recovery: RecoveryPolicy::detect_only(),
        ..GaasXConfig::small()
    };
    let g = rmat(400, 4);
    let mut config = ServerConfig::new(accel);
    config.max_retries = 3;
    let mut server = Server::new(config);
    server.register_graph("g", g.clone()).unwrap();
    server.submit(request("acme", "g", QueryKind::Bfs { source: 0 }, 0.0));
    let responses = server.run();

    let output = responses[0].outcome.as_ref().unwrap();
    let clean = GaasX::new(GaasXConfig::small())
        .run_labeled_sharded(&Bfs::from_source(VertexId::new(0)), &g, "g", 1)
        .unwrap();
    assert_eq!(output.values[0], clean.result);
    let stats = server.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.completed, 1);
    // Failed attempts billed their partial work on top of the final run.
    assert!(responses[0].billed_ns > output.report.elapsed_ns);
    assert_eq!(
        server.ledger().billed_ns("acme"),
        responses[0].billed_ns,
        "ledger and response agree on the bill"
    );
}

#[test]
fn exhausted_retries_surface_a_typed_device_fault() {
    let accel = GaasXConfig {
        fault: FaultModel {
            seed: 5,
            write_fail_rate: 2e-3,
            ..FaultModel::none()
        },
        recovery: RecoveryPolicy::detect_only(),
        ..GaasXConfig::small()
    };
    let mut config = ServerConfig::new(accel);
    config.max_retries = 3;
    let backoff = config.retry_backoff_ns;
    let mut server = Server::new(config);
    server.register_graph("g", rmat(400, 4)).unwrap();
    server.submit(request("acme", "g", QueryKind::Bfs { source: 0 }, 0.0));
    let responses = server.run();

    match &responses[0].outcome {
        Err(ServeError::DeviceFault {
            attempts,
            report: Some(report),
            ..
        }) => {
            assert_eq!(*attempts, 4, "initial try plus three retries");
            assert!(report.faults.faults_detected > 0);
        }
        other => panic!("want DeviceFault with report, got {other:?}"),
    }
    assert_eq!(server.stats().retries, 3);
    assert_eq!(server.stats().failed_fault, 1);
    // Backoff occupies the lane but is not billed device time.
    assert_eq!(
        responses[0].finish_ns,
        responses[0].start_ns + responses[0].billed_ns + backoff * 3.0
    );
    assert!(responses[0].billed_ns > Nanos::ZERO);
}

#[test]
fn wear_threshold_evicts_and_reprograms_transparently() {
    // Endurance tracking on (large budget: no cell actually dies), wear
    // threshold low enough that every query trips an eviction.
    let accel = GaasXConfig {
        fault: FaultModel {
            seed: 3,
            endurance: 1_000_000_000,
            ..FaultModel::none()
        },
        recovery: RecoveryPolicy::standard(),
        ..GaasXConfig::small()
    };
    let mut config = ServerConfig::new(accel);
    config.wear_threshold_writes = 1;
    let mut server = Server::new(config);
    server.register_graph("g", rmat(400, 6)).unwrap();
    for i in 0..3 {
        server.submit(request("acme", "g", QueryKind::Bfs { source: 0 }, i as f64));
    }
    let responses = server.run();
    let values: Vec<_> = responses
        .iter()
        .map(|r| r.outcome.as_ref().unwrap().values[0].clone())
        .collect();
    assert_eq!(values[0], values[1]);
    assert_eq!(values[1], values[2]);
    let stats = server.stats();
    assert_eq!(stats.wear_evictions, 3);
    assert_eq!(
        stats.reprograms, 2,
        "every query after the first reprograms"
    );
    assert_eq!(server.graph("g").unwrap().programs(), 3);
}

#[test]
fn lru_capacity_eviction_keeps_results_correct() {
    let small = rmat(200, 1);
    let big = rmat(300, 2);
    let mut config = ServerConfig::new(GaasXConfig::small());
    // Capacity fits either graph alone but never both.
    config.capacity_edges = small.num_edges().max(big.num_edges()) + 10;
    let mut server = Server::new(config);
    server.register_graph("small", small.clone()).unwrap();
    server.register_graph("big", big.clone()).unwrap();
    // Alternate targets so each dispatch must evict the other graph.
    for i in 0..4 {
        let graph = if i % 2 == 0 { "small" } else { "big" };
        server.submit(request(
            "acme",
            graph,
            QueryKind::Bfs { source: 0 },
            i as f64,
        ));
    }
    let responses = server.run();

    let mut accel = GaasX::new(GaasXConfig::small());
    let want_small = accel
        .run_labeled_sharded(&Bfs::from_source(VertexId::new(0)), &small, "small", 1)
        .unwrap();
    let want_big = accel
        .run_labeled_sharded(&Bfs::from_source(VertexId::new(0)), &big, "big", 1)
        .unwrap();
    for (i, response) in responses.iter().enumerate() {
        let output = response.outcome.as_ref().unwrap();
        let want = if i % 2 == 0 { &want_small } else { &want_big };
        assert_eq!(output.values[0], want.result, "query {i}");
        assert_eq!(
            output.report.elapsed_ns, want.report.elapsed_ns,
            "query {i}"
        );
    }
    assert!(server.stats().capacity_evictions >= 3);
    assert!(server.stats().reprograms >= 2);
}

#[test]
fn unknown_graphs_and_oversized_registrations_are_typed() {
    let mut config = ServerConfig::new(GaasXConfig::small());
    config.capacity_edges = 100;
    let mut server = Server::new(config);
    match server.register_graph("huge", rmat(400, 8)) {
        Err(ServeError::CapacityExceeded { capacity_edges, .. }) => {
            assert_eq!(capacity_edges, 100);
        }
        other => panic!("want CapacityExceeded, got {other:?}"),
    }
    server.submit(request("acme", "ghost", QueryKind::Bfs { source: 0 }, 0.0));
    let responses = server.run();
    match &responses[0].outcome {
        Err(e @ ServeError::UnknownGraph { graph }) => {
            assert_eq!(graph, "ghost");
            assert!(e.is_rejection());
        }
        other => panic!("want UnknownGraph, got {other:?}"),
    }
    assert_eq!(server.stats().rejected_unknown, 1);
    assert_eq!(server.ledger().billed_ns("acme"), Nanos::ZERO);
}

#[test]
fn batched_queries_match_serial_one_shots_and_cost_less() {
    let g = rmat(600, 13);
    let sources = [0u32, 2, 5];

    let mut batch_server = Server::new(ServerConfig::new(GaasXConfig::small()));
    batch_server.register_graph("g", g.clone()).unwrap();
    batch_server.submit(request(
        "acme",
        "g",
        QueryKind::BatchSssp {
            sources: sources.to_vec(),
        },
        0.0,
    ));
    let batch = batch_server.run();
    let batch_output = batch[0].outcome.as_ref().unwrap();

    let mut serial_server = Server::new(ServerConfig::new(GaasXConfig::small()));
    serial_server.register_graph("g", g.clone()).unwrap();
    for (i, &source) in sources.iter().enumerate() {
        serial_server.submit(request(
            "acme",
            "g",
            QueryKind::Sssp { source },
            i as f64 * 1e12,
        ));
    }
    let serial = serial_server.run();

    let mut serial_billed = Nanos::ZERO;
    for (q, response) in serial.iter().enumerate() {
        let output = response.outcome.as_ref().unwrap();
        assert_eq!(batch_output.values[q], output.values[0], "source {q}");
        assert_eq!(
            batch_output.iterations[q], output.iterations[0],
            "source {q}"
        );
        serial_billed += response.billed_ns;
    }
    assert!(
        batch[0].billed_ns < serial_billed,
        "batch {} ns should beat serial {} ns",
        batch[0].billed_ns,
        serial_billed
    );
}

#[test]
fn per_tenant_billing_conserves_bit_exactly() {
    let mut config = ServerConfig::new(GaasXConfig::small());
    config.lanes = 1;
    config.queue_capacity = 2;
    config.default_deadline_ns = Some(Nanos::from_ns(50_000.0));
    let mut server = Server::new(config);
    server.register_graph("g", rmat(500, 15)).unwrap();
    server.register_graph("h", rmat(300, 16)).unwrap();
    let tenants = ["alpha", "beta", "gamma"];
    for i in 0..9 {
        let kind = match i % 3 {
            0 => QueryKind::Bfs { source: i as u32 },
            1 => QueryKind::Sssp { source: i as u32 },
            _ => QueryKind::BatchBfs {
                sources: vec![0, i as u32],
            },
        };
        let graph = if i % 2 == 0 { "g" } else { "h" };
        server.submit(request(tenants[i % 3], graph, kind, i as f64 * 10.0));
    }
    let responses = server.run();
    assert_eq!(responses.len(), 9);

    // Recompute per-tenant bills from the response stream in completion
    // order and fold tenants lexicographically — the canonical fold must
    // reproduce the ledger totals to the last bit.
    let mut recomputed: BTreeMap<&str, Nanos> = BTreeMap::new();
    for response in &responses {
        *recomputed
            .entry(response.tenant.as_str())
            .or_insert(Nanos::ZERO) += response.billed_ns;
    }
    for (tenant, &billed) in &recomputed {
        assert_eq!(
            server.ledger().billed_ns(tenant).ns().to_bits(),
            billed.ns().to_bits(),
            "tenant {tenant}"
        );
    }
    let total: Nanos = recomputed.values().copied().sum();
    assert_eq!(
        server.ledger().total_billed_ns().ns().to_bits(),
        total.ns().to_bits(),
        "per-tenant sums must reproduce the total exactly"
    );
    // Every query got a typed answer and was accounted exactly once.
    let stats = server.stats();
    assert_eq!(
        stats.admitted + stats.rejected_overload + stats.rejected_quota + stats.rejected_unknown,
        9
    );
}
