//! Property: residency is functionally invisible. A graph that is
//! evicted, reprogrammed onto fresh banks, and queried again returns a
//! result and report bit-identical to a fresh one-shot
//! `GaasX::run_labeled_sharded` of the same request — across search
//! modes, job counts, and fault models (stuck cells, transient write
//! failures, endurance tracking; all deterministic per seed, so a
//! reprogram replays the same recovery the one-shot run performs).

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use gaasx_core::algorithms::{Bfs, Sssp};
use gaasx_core::{GaasX, GaasXConfig, RecoveryPolicy, SearchMode};
use gaasx_graph::{generators, CooGraph, VertexId};
use gaasx_serve::{QueryKind, ResidentGraph};
use gaasx_xbar::FaultModel;

fn graph(seed: u64) -> CooGraph {
    generators::rmat(&generators::RmatConfig::new(1 << 5, 250).with_seed(seed)).unwrap()
}

fn config(mode: SearchMode, faulty: bool) -> GaasXConfig {
    let mut config = GaasXConfig {
        search_mode: mode,
        ..GaasXConfig::small()
    };
    if faulty {
        config.fault = FaultModel {
            seed: 11,
            cam_stuck_ber: 1e-4,
            mac_stuck_ber: 1e-4,
            write_fail_rate: 1e-3,
            endurance: 1_000_000_000,
            ..FaultModel::none()
        };
        config.recovery = RecoveryPolicy::standard();
    }
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn evict_reprogram_rerun_is_bit_identical_to_one_shot(
        graph_seed in 0u64..6,
        mode_idx in 0usize..3,
        jobs_idx in 0usize..3,
        faulty in any::<bool>(),
        weighted in any::<bool>(),
        source in 0u32..32,
    ) {
        let mode = [SearchMode::Linear, SearchMode::Indexed, SearchMode::Auto][mode_idx];
        let jobs = [1usize, 2, 4][jobs_idx];
        let g = graph(graph_seed);
        let config = config(mode, faulty);
        let kind = if weighted {
            QueryKind::Sssp { source }
        } else {
            QueryKind::Bfs { source }
        };

        let mut resident = ResidentGraph::new("g".into(), g.clone(), config.clone(), jobs);
        resident.ensure_resident().unwrap();
        // First query wears the banks in; eviction then frees them.
        resident.run_query(&kind, None).unwrap();
        resident.evict();
        prop_assert!(!resident.is_resident());
        resident.ensure_resident().unwrap();
        let rerun = resident.run_query(&kind, None).unwrap();
        prop_assert_eq!(resident.programs(), 2);

        let mut accel = GaasX::new(config);
        let one_shot = if weighted {
            accel.run_labeled_sharded(&Sssp::from_source(VertexId::new(source)), &g, "g", jobs)
                .unwrap()
        } else {
            accel.run_labeled_sharded(&Bfs::from_source(VertexId::new(source)), &g, "g", jobs)
                .unwrap()
        };
        prop_assert_eq!(&rerun.values[0], &one_shot.result);
        prop_assert_eq!(rerun.report.ops, one_shot.report.ops);
        prop_assert_eq!(rerun.report.elapsed_ns, one_shot.report.elapsed_ns);
        prop_assert_eq!(
            rerun.report.energy.total_nj(),
            one_shot.report.energy.total_nj()
        );
        prop_assert_eq!(rerun.report.faults, one_shot.report.faults);
    }

    #[test]
    fn batched_sources_stay_identical_to_one_shots_across_modes(
        graph_seed in 0u64..6,
        mode_idx in 0usize..3,
        jobs_idx in 0usize..2,
        weighted in any::<bool>(),
        sources in prop::collection::vec(0u32..32, 1..4),
    ) {
        let mode = [SearchMode::Linear, SearchMode::Indexed, SearchMode::Auto][mode_idx];
        let jobs = [1usize, 2][jobs_idx];
        let g = graph(graph_seed);
        let config = config(mode, false);

        let kind = if weighted {
            QueryKind::BatchSssp { sources: sources.clone() }
        } else {
            QueryKind::BatchBfs { sources: sources.clone() }
        };
        let mut resident = ResidentGraph::new("g".into(), g.clone(), config.clone(), jobs);
        resident.ensure_resident().unwrap();
        let batch = resident.run_query(&kind, None).unwrap();

        for (q, &source) in sources.iter().enumerate() {
            let mut accel = GaasX::new(config.clone());
            let one_shot = if weighted {
                accel.run_labeled_sharded(&Sssp::from_source(VertexId::new(source)), &g, "g", jobs)
                    .unwrap()
            } else {
                accel.run_labeled_sharded(&Bfs::from_source(VertexId::new(source)), &g, "g", jobs)
                    .unwrap()
            };
            prop_assert_eq!(&batch.values[q], &one_shot.result, "source {}", source);
            prop_assert_eq!(batch.iterations[q], one_shot.report.iterations,
                "source {}", source);
        }
    }
}
