//! Linear-vs-Indexed search-path microbenchmarks: the raw CAM search in
//! both host modes, the memoized replay path, and a full PageRank run per
//! mode. These measure the simulator's host cost — the modeled hardware
//! latency and every `RunReport` are bit-identical across modes.

#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_xbar::geometry::CamGeometry;
use gaasx_xbar::{CamCrossbar, HitVector, SearchMode};

const DST_MASK: u128 = 0xFFFF_FFFF;

fn bench_cam_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_modes/cam");
    for mode in [SearchMode::Linear, SearchMode::Indexed] {
        let mut cam = CamCrossbar::new(CamGeometry::paper());
        cam.set_search_mode(mode);
        for row in 0..128u128 {
            cam.write(row as usize, ((row % 32) << 32) | (row % 16))
                .unwrap();
        }
        let mut hits = HitVector::new(0);
        // First search builds the index (Indexed mode); steady state is
        // what the loop measures.
        cam.search_into(5, DST_MASK, &mut hits);
        group.bench_function(format!("dst_search_{mode:?}"), |b| {
            b.iter(|| cam.search_into(black_box(5), DST_MASK, &mut hits))
        });
    }
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_modes/pagerank");
    group.sample_size(10);
    let graph = rmat(&RmatConfig::new(1 << 9, 6_000).with_seed(23)).unwrap();
    for mode in [SearchMode::Linear, SearchMode::Indexed] {
        group.bench_function(format!("x5_{mode:?}"), |b| {
            b.iter(|| {
                let mut accel = GaasX::new(GaasXConfig {
                    search_mode: mode,
                    ..GaasXConfig::small()
                });
                accel
                    .run(&PageRank::fixed_iterations(5), black_box(&graph))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cam_search, bench_pagerank);
criterion_main!(benches);
