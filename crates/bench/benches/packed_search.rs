//! Packed-vs-scalar kernel microbenchmarks on the CAM/MAC hot paths.
//!
//! The headline gate is the 2048-row deep-bank Linear search: the packed
//! bit-plane matcher must clear 1.5x over the scalar scan there (the
//! `search/` pairs below; `results/BENCH_08.json` records the end-to-end
//! win, 1.9–2.6x on deep-bank runs). The write pair measures the other
//! side of the trade — diff-based plane maintenance must keep block
//! programming O(changed bits), not O(width) — and the MAC pair measures
//! the bit-plane popcount evaluation of the clean quantized burst.

#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gaasx_xbar::geometry::{CamGeometry, MacGeometry};
use gaasx_xbar::{CamCrossbar, Fidelity, HitVector, Kernel, MacCrossbar, MacDirection, SearchMode};

/// A fully programmed bank at `rows` depth with colliding dst values, so
/// searches return multi-hit vectors like real edge blocks do.
fn programmed_cam(rows: usize, kernel: Kernel) -> CamCrossbar {
    let mut cam = CamCrossbar::new(CamGeometry {
        rows,
        ..CamGeometry::paper()
    });
    cam.set_search_mode(SearchMode::Linear);
    cam.set_kernel(kernel);
    for row in 0..rows {
        cam.write(row, ((row as u128) << 32) | (row as u128 % 61))
            .unwrap();
    }
    cam
}

fn bench_linear_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_search");
    for (label, rows) in [("paper_128", 128usize), ("deep_2048", 2048)] {
        for kernel in [Kernel::Scalar, Kernel::Packed] {
            let mut cam = programmed_cam(rows, kernel);
            let mut out = HitVector::new(rows);
            group.bench_function(format!("search/{label}/{kernel}"), |b| {
                b.iter(|| {
                    cam.search_into(black_box(7), 0xFFFF_FFFF, &mut out);
                    out.count()
                })
            });
        }
    }
    group.finish();
}

fn bench_block_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_program");
    for kernel in [Kernel::Scalar, Kernel::Packed] {
        let mut cam = programmed_cam(2048, kernel);
        group.bench_function(format!("rewrite_2048/{kernel}"), |b| {
            b.iter(|| {
                cam.invalidate_all();
                for row in 0..2048u128 {
                    cam.write(row as usize, black_box((row << 32) | (row % 53)))
                        .unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_quantized_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_mac");
    for kernel in [Kernel::Scalar, Kernel::Packed] {
        let mut mac = MacCrossbar::new(MacGeometry::paper(), Fidelity::Quantized);
        mac.set_kernel(kernel);
        for row in 0..16 {
            mac.write_row(row, &[(row as u32 + 1) * 3; 16]).unwrap();
        }
        let active: Vec<usize> = (0..16).collect();
        let inputs: Vec<u32> = (0..16).map(|i| i * 97 + 5).collect();
        group.bench_function(format!("quantized_16rows/{kernel}"), |b| {
            b.iter(|| {
                mac.mac(
                    MacDirection::RowsToColumns,
                    black_box(&active),
                    black_box(&inputs),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_linear_search,
    bench_block_program,
    bench_quantized_mac
);
criterion_main!(benches);
