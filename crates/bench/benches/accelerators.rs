//! Simulation-throughput benchmarks of the PIM engines: how fast the
//! simulator runs whole algorithm executions (edges simulated per second).

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use gaasx_baselines::{GraphR, GraphRConfig};
use gaasx_core::algorithms::{Bfs, CollaborativeFiltering, PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::bipartite::BipartiteGraph;
use gaasx_graph::datasets::PaperDataset;
use gaasx_graph::VertexId;

fn bench_gaasx(c: &mut Criterion) {
    let graph = PaperDataset::WikiVote.instantiate_graph(0.1).unwrap();
    let edges = graph.num_edges() as u64;
    let src = VertexId::new(0);
    let mut group = c.benchmark_group("gaasx_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges));
    group.bench_function("pagerank_x3", |b| {
        b.iter(|| {
            GaasX::new(GaasXConfig::paper())
                .run(&PageRank::fixed_iterations(3), &graph)
                .unwrap()
        })
    });
    group.bench_function("bfs", |b| {
        b.iter(|| {
            GaasX::new(GaasXConfig::paper())
                .run(&Bfs::from_source(src), &graph)
                .unwrap()
        })
    });
    group.bench_function("sssp", |b| {
        b.iter(|| {
            GaasX::new(GaasXConfig::paper())
                .run(&Sssp::from_source(src), &graph)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_graphr(c: &mut Criterion) {
    let graph = PaperDataset::WikiVote.instantiate_graph(0.1).unwrap();
    let edges = graph.num_edges() as u64;
    let mut group = c.benchmark_group("graphr_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges));
    group.bench_function("pagerank_x3", |b| {
        b.iter(|| {
            GraphR::new(GraphRConfig::paper())
                .pagerank(&graph, 0.85, 3)
                .unwrap()
        })
    });
    group.bench_function("sssp", |b| {
        b.iter(|| {
            GraphR::new(GraphRConfig::paper())
                .sssp(&graph, VertexId::new(0))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_cf(c: &mut Criterion) {
    let ratings = BipartiteGraph::synthetic(100, 30, 1500, 5).unwrap();
    let cf = CollaborativeFiltering {
        features: 8,
        epochs: 1,
        learning_rate: 0.02,
        regularization: 0.02,
        seed: 3,
    };
    let mut group = c.benchmark_group("cf_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ratings.num_ratings() as u64));
    group.bench_function("gaasx_epoch", |b| {
        b.iter(|| GaasX::new(GaasXConfig::paper()).run(&cf, &ratings).unwrap())
    });
    group.bench_function("graphr_epoch", |b| {
        b.iter(|| {
            GraphR::new(GraphRConfig::paper())
                .cf(&ratings, 8, 1, 0.02, 0.02, 3)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gaasx, bench_graphr, bench_cf);
criterion_main!(benches);
