//! Host-throughput benchmarks of the sharded execution layer: the same
//! simulated workload run serially and fanned out over worker threads.
//! The simulated report is bit-identical across all cases (asserted by
//! `jobs_scaling` and the core tests); this measures only the simulator's
//! wall-clock.

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use gaasx_core::algorithms::{PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::VertexId;

fn run_pagerank(graph: &gaasx_graph::CooGraph, jobs: usize) {
    let pr = PageRank::fixed_iterations(3);
    let mut accel = GaasX::new(GaasXConfig::paper());
    if jobs > 1 {
        accel.run_sharded(&pr, graph, jobs).unwrap();
    } else {
        accel.run(&pr, graph).unwrap();
    }
}

fn run_sssp(graph: &gaasx_graph::CooGraph, jobs: usize) {
    let sssp = Sssp::from_source(VertexId::new(0));
    let mut accel = GaasX::new(GaasXConfig::paper());
    if jobs > 1 {
        accel.run_sharded(&sssp, graph, jobs).unwrap();
    } else {
        accel.run(&sssp, graph).unwrap();
    }
}

fn bench_sharded(c: &mut Criterion) {
    let graph = rmat(&RmatConfig::new(1 << 11, 30_000).with_seed(17)).unwrap();
    let edges = graph.num_edges() as u64;

    let mut group = c.benchmark_group("sharded_pagerank_x3");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges));
    for jobs in [1usize, 2, 4] {
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| run_pagerank(&graph, jobs))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sharded_sssp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges));
    for jobs in [1usize, 4] {
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| run_sssp(&graph, jobs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
