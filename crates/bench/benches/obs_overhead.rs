//! Overhead of the tracing layer on the hot simulation path.
//!
//! The acceptance bar: running with an enabled tracer draining into
//! `NullSink` must stay within 5% of the fully untraced path (default
//! `Tracer::null()`, which skips all event construction). The same bar
//! covers the timeline layer: `NullSink` observes no intervals, so the
//! engine must skip the per-op ledger entirely, and the untraced and
//! null-sink rows bound the timeline-disabled cost. The
//! `pagerank_timeline_sink` row measures the enabled cost for contrast.

#![allow(clippy::unwrap_used)]
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::CooGraph;
use gaasx_sim::{AggregateSink, NullSink, TimelineSink, Tracer};

fn demo_graph() -> CooGraph {
    rmat(&RmatConfig::new(1 << 9, 4_000).with_seed(17)).unwrap()
}

fn pagerank_ns(accel: &mut GaasX, graph: &CooGraph) -> f64 {
    accel
        .run(&PageRank::fixed_iterations(3), graph)
        .unwrap()
        .report
        .elapsed_ns
        .ns()
}

fn obs_overhead(c: &mut Criterion) {
    let graph = demo_graph();
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));

    group.bench_function("pagerank_untraced", |b| {
        let mut accel = GaasX::new(GaasXConfig::small());
        b.iter(|| black_box(pagerank_ns(&mut accel, &graph)));
    });
    group.bench_function("pagerank_null_sink", |b| {
        let mut accel =
            GaasX::new(GaasXConfig::small()).with_tracer(Tracer::with_sink(Arc::new(NullSink)));
        b.iter(|| black_box(pagerank_ns(&mut accel, &graph)));
    });
    group.bench_function("pagerank_aggregate_sink", |b| {
        let mut accel = GaasX::new(GaasXConfig::small())
            .with_tracer(Tracer::with_sink(Arc::new(AggregateSink::new())));
        b.iter(|| black_box(pagerank_ns(&mut accel, &graph)));
    });
    group.bench_function("pagerank_timeline_sink", |b| {
        let sink = Arc::new(TimelineSink::new());
        let mut accel =
            GaasX::new(GaasXConfig::small()).with_tracer(Tracer::with_sink(sink.clone()));
        b.iter(|| {
            let ns = black_box(pagerank_ns(&mut accel, &graph));
            // Drain so the interval buffer doesn't grow across iterations.
            black_box(sink.take().len());
            ns
        });
    });
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
