//! Benchmarks of the graph substrate: generation, locality, partitioning,
//! and index construction throughput.

#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use gaasx_graph::generators::{localize, rmat, LocalityConfig, RmatConfig};
use gaasx_graph::partition::{GridPartition, TraversalOrder};
use gaasx_graph::stats::TileDensityProfile;
use gaasx_graph::{Csc, Csr};

const EDGES: usize = 100_000;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.throughput(Throughput::Elements(EDGES as u64));
    group.sample_size(20);
    group.bench_function("rmat_100k_edges", |b| {
        b.iter(|| rmat(&RmatConfig::new(1 << 14, EDGES).with_seed(7)).unwrap())
    });
    let g = rmat(&RmatConfig::new(1 << 14, EDGES).with_seed(7)).unwrap();
    group.bench_function("localize_100k_edges", |b| {
        b.iter(|| localize(black_box(&g), &LocalityConfig::new(0.6)).unwrap())
    });
    group.finish();
}

fn bench_indexing(c: &mut Criterion) {
    let g = rmat(&RmatConfig::new(1 << 14, EDGES).with_seed(9)).unwrap();
    let mut group = c.benchmark_group("indexing");
    group.throughput(Throughput::Elements(EDGES as u64));
    group.sample_size(20);
    group.bench_function("csr_build", |b| b.iter(|| Csr::from_coo(black_box(&g))));
    group.bench_function("csc_build", |b| b.iter(|| Csc::from_coo(black_box(&g))));
    group.bench_function("grid_partition_16x16_intervals", |b| {
        b.iter(|| GridPartition::with_num_intervals(black_box(&g), 16).unwrap())
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let g = rmat(&RmatConfig::new(1 << 14, EDGES).with_seed(11)).unwrap();
    let grid = GridPartition::with_num_intervals(&g, 16).unwrap();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(20);
    group.bench_function("tile_density_profile", |b| {
        b.iter(|| TileDensityProfile::compute(black_box(&g), 16).unwrap())
    });
    group.bench_function("stream_column_major", |b| {
        b.iter(|| {
            grid.stream(TraversalOrder::ColumnMajor)
                .map(|s| s.num_edges())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_indexing, bench_analysis);
criterion_main!(benches);
