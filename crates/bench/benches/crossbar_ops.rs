//! Microbenchmarks of the crossbar device models — the per-operation cost
//! of the simulator itself (not the modeled hardware latency).

#![allow(clippy::unwrap_used)]
use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gaasx_xbar::geometry::{CamGeometry, MacGeometry};
use gaasx_xbar::{CamCrossbar, Fidelity, HitVector, MacCrossbar, MacDirection};

fn bench_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_crossbar");
    for (name, fidelity) in [
        ("exact", Fidelity::Exact),
        ("quantized", Fidelity::Quantized),
    ] {
        let mut mac = MacCrossbar::new(MacGeometry::paper(), fidelity);
        for row in 0..16 {
            mac.write_row(row, &[(row as u32 + 1) * 3; 16]).unwrap();
        }
        let active: Vec<usize> = (0..16).collect();
        let inputs: Vec<u32> = (0..16).map(|i| i * 97 + 5).collect();
        group.bench_function(format!("mac_16rows_{name}"), |b| {
            b.iter(|| {
                mac.mac(
                    MacDirection::RowsToColumns,
                    black_box(&active),
                    black_box(&inputs),
                )
                .unwrap()
            })
        });
    }
    let mut mac = MacCrossbar::new(MacGeometry::paper(), Fidelity::Exact);
    group.bench_function("write_row_16vals", |b| {
        b.iter(|| {
            mac.write_row(black_box(7), black_box(&[42u32; 16]))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_cam(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_crossbar");
    let mut cam = CamCrossbar::new(CamGeometry::paper());
    for row in 0..128 {
        cam.write(row, ((row as u128) << 32) | (row as u128 % 16))
            .unwrap();
    }
    group.bench_function("search_dst_field", |b| {
        b.iter(|| cam.search(black_box(5), 0xFFFF_FFFF))
    });
    group.bench_function("write_entry", |b| {
        b.iter(|| cam.write(black_box(64), black_box(0xdead_beef)).unwrap())
    });
    group.finish();
}

fn bench_hit_vector(c: &mut Criterion) {
    let mut group = c.benchmark_group("hit_vector");
    let indices: Vec<usize> = (0..128).step_by(3).collect();
    let hv = HitVector::from_indices(128, &indices);
    group.bench_function("iter_ones", |b| {
        b.iter(|| black_box(&hv).iter_ones().count())
    });
    group.bench_function("chunks_iter_of_16", |b| {
        b.iter(|| {
            let mut chunks = black_box(&hv).chunks_iter(16);
            let mut total = 0usize;
            while let Some(chunk) = chunks.next_chunk() {
                total += chunk.len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mac, bench_cam, bench_hit_vector);
criterion_main!(benches);
