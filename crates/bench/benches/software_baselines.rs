//! Benchmarks of the real (measured) software baselines — these numbers
//! are the CPU side of Figs 15/16, so their own performance matters.

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use gaasx_baselines::cpu::{GapbsCpu, GraphChiCpu, GridGraphCpu};
use gaasx_baselines::reference;
use gaasx_graph::bipartite::BipartiteGraph;
use gaasx_graph::datasets::PaperDataset;
use gaasx_graph::VertexId;

fn bench_gridgraph(c: &mut Criterion) {
    let graph = PaperDataset::Slashdot.instantiate_graph(0.1).unwrap();
    let edges = graph.num_edges() as u64;
    let src = VertexId::new(0);
    let mut group = c.benchmark_group("cpu_gridgraph");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges));
    let cpu = GridGraphCpu::with_threads(4);
    group.bench_function("pagerank_x3", |b| {
        b.iter(|| cpu.pagerank(&graph, 0.85, 3).unwrap())
    });
    group.bench_function("sssp", |b| b.iter(|| cpu.sssp(&graph, src).unwrap()));
    group.finish();
}

fn bench_gapbs(c: &mut Criterion) {
    let graph = PaperDataset::Slashdot.instantiate_graph(0.1).unwrap();
    let edges = graph.num_edges() as u64;
    let src = VertexId::new(0);
    let mut group = c.benchmark_group("cpu_gapbs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges));
    let cpu = GapbsCpu::with_threads(4);
    group.bench_function("pagerank_x3", |b| {
        b.iter(|| cpu.pagerank(&graph, 0.85, 3).unwrap())
    });
    group.bench_function("bfs", |b| b.iter(|| cpu.bfs(&graph, src).unwrap()));
    group.bench_function("dijkstra", |b| b.iter(|| reference::dijkstra(&graph, src)));
    group.finish();
}

fn bench_graphchi(c: &mut Criterion) {
    let ratings = BipartiteGraph::synthetic(2_000, 200, 50_000, 5).unwrap();
    let mut group = c.benchmark_group("cpu_graphchi");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ratings.num_ratings() as u64));
    let chi = GraphChiCpu::new();
    group.bench_function("cf_epoch_f32", |b| {
        b.iter(|| chi.cf(&ratings, 32, 1, 0.01, 0.02, 7).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_gridgraph, bench_gapbs, bench_graphchi);
criterion_main!(benches);
