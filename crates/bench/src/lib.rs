//! Experiment harness regenerating every table and figure of the GaaS-X
//! paper.
//!
//! Each `fig*`/`table*` binary in `src/bin/` is a thin wrapper over the
//! functions in [`experiments`]; `run_all` executes everything and emits
//! the data behind `EXPERIMENTS.md`.
//!
//! ## Scaling
//!
//! The paper's largest graphs (LiveJournal 69 M, Orkut 106 M edges) are
//! impractical to simulate per-edge on a laptop at full size, so each
//! dataset is instantiated at `scale = min(1, cap_edges / full_edges)`.
//! The cap defaults to [`DEFAULT_CAP_EDGES`] and can be raised via the
//! `GAASX_CAP_EDGES` environment variable (set it to `200000000` for
//! full-scale runs). Average degree — and therefore tile density, the
//! property every measured ratio depends on — is preserved under this
//! scaling.

#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod artifact;
pub mod experiments;
pub mod trace;

use gaasx_graph::bipartite::BipartiteGraph;
use gaasx_graph::datasets::PaperDataset;
use gaasx_graph::{CooGraph, GraphError, VertexId};

/// Default per-dataset edge cap for scaled instantiation.
pub const DEFAULT_CAP_EDGES: usize = 300_000;

/// Reads the edge cap from `GAASX_CAP_EDGES` (default
/// [`DEFAULT_CAP_EDGES`]).
pub fn cap_edges() -> usize {
    std::env::var("GAASX_CAP_EDGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CAP_EDGES)
}

/// PageRank iteration count used across experiments (`GAASX_PR_ITERS`,
/// default 10).
pub fn pr_iterations() -> u32 {
    std::env::var("GAASX_PR_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Worker-thread count for GaaS-X shard execution (`GAASX_JOBS`, default
/// 1 = the serial engine). Values above 1 route the simulations through
/// [`gaasx_core::ShardedEngine`]; the reported totals are bit-identical
/// either way — only host wall-clock changes.
pub fn jobs() -> usize {
    std::env::var("GAASX_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or(1)
}

/// The scale factor that keeps `dataset` at or under `cap` edges.
pub fn scale_for(dataset: PaperDataset, cap: usize) -> f64 {
    (cap as f64 / dataset.full_edges() as f64).min(1.0)
}

/// Instantiates a graph dataset at the capped scale.
///
/// # Errors
///
/// Propagates generator errors (and rejects the bipartite Netflix set).
pub fn load_graph(dataset: PaperDataset, cap: usize) -> Result<CooGraph, GraphError> {
    dataset.instantiate_graph(scale_for(dataset, cap))
}

/// Instantiates the Netflix rating set at the capped scale.
///
/// # Errors
///
/// Propagates generator errors.
pub fn load_ratings(cap: usize) -> Result<BipartiteGraph, GraphError> {
    PaperDataset::Netflix.instantiate_ratings(scale_for(PaperDataset::Netflix, cap))
}

/// Parallel compute units for a dataset scaled to `cap` edges.
///
/// The paper gives both GaaS-X and GraphR 2048 parallel units. A scaled
/// dataset with the full 2048 units would never fill them (the whole graph
/// fits in one wave), hiding precisely the utilization regime the paper
/// measures. Scaling the unit count by the *same* factor as the dataset —
/// for both engines equally — preserves the full-scale waves-per-run
/// structure while keeping simulations tractable. At `scale = 1` this is
/// exactly the paper's 2048.
pub fn scaled_units(dataset: PaperDataset, cap: usize) -> usize {
    ((2048.0 * scale_for(dataset, cap)).round() as usize).clamp(4, 2048)
}

/// Source vertex for traversal experiments: the highest-out-degree vertex,
/// which in a scale-free graph reaches most of the component.
pub fn traversal_source(graph: &CooGraph) -> VertexId {
    let deg = graph.out_degrees();
    let v = deg
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .map_or(0, |(i, _)| i as u32);
    VertexId::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_respects_cap() {
        let s = scale_for(PaperDataset::Orkut, 100_000);
        assert!((PaperDataset::Orkut.full_edges() as f64 * s - 100_000.0).abs() < 1.0);
        assert_eq!(scale_for(PaperDataset::WikiVote, 10_000_000), 1.0);
    }

    #[test]
    fn load_graph_honors_cap() {
        let g = load_graph(PaperDataset::Slashdot, 20_000).unwrap();
        assert!(g.num_edges() <= 20_001);
    }

    #[test]
    fn traversal_source_is_a_hub() {
        let g = load_graph(PaperDataset::WikiVote, 20_000).unwrap();
        let src = traversal_source(&g);
        let deg = g.out_degrees();
        assert_eq!(deg[src.index()], *deg.iter().max().unwrap());
    }
}
