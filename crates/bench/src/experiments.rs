//! The experiment implementations behind every table and figure.
//!
//! Each function renders a plain-text table (via [`gaasx_sim::table`]) so
//! the `src/bin/` wrappers and `run_all` can compose them. Heavy
//! simulations share one [`run_matrix`] pass.

use std::error::Error;

use gaasx_baselines::cpu::{GapbsCpu, GraphChiCpu, GridGraphCpu};
use gaasx_baselines::gpu::GpuModel;
use gaasx_baselines::gram::GramModel;
use gaasx_baselines::redundancy;
use gaasx_baselines::{GraphR, GraphRConfig};
use gaasx_core::algorithms::{Bfs, CollaborativeFiltering, PageRank, Sssp};
use gaasx_core::config::{table1_components, table1_total_area_mm2, table1_total_power_w};
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::datasets::PaperDataset;
use gaasx_graph::stats::{GraphSummary, TileDensityProfile};
use gaasx_sim::stats::geometric_mean;
use gaasx_sim::table::{count, ratio, Table};
use gaasx_sim::{Histogram, JsonlSink, Phase, RunReport, Tracer};

use crate::{load_graph, load_ratings, scale_for, traversal_source};

/// Boxed error alias for the harness.
pub type BenchResult<T> = Result<T, Box<dyn Error>>;

/// The three graph algorithms of Figs 11–16.
pub const ALGORITHMS: [&str; 3] = ["pagerank", "bfs", "sssp"];

/// One (dataset, algorithm) cell of the main comparison matrix.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Dataset.
    pub dataset: PaperDataset,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// GaaS-X simulation report.
    pub gaasx: RunReport,
    /// GraphR simulation report.
    pub graphr: RunReport,
}

/// Runs GaaS-X and GraphR on every (graph dataset × algorithm) pair —
/// the simulation pass behind Figs 11, 12, 13, and 14.
///
/// Equivalent to [`run_matrix_with_jobs`] with `jobs = 1` (the serial
/// engine).
///
/// # Errors
///
/// Propagates generator and simulation errors.
pub fn run_matrix(cap: usize, pr_iters: u32) -> BenchResult<Vec<MatrixEntry>> {
    run_matrix_with_jobs(cap, pr_iters, 1)
}

/// [`run_matrix`] with the GaaS-X side fanned out over `jobs` shard worker
/// threads ([`gaasx_core::ShardedEngine`]). The reported totals are
/// bit-identical to the serial pass; only host wall-clock changes.
///
/// # Errors
///
/// Propagates generator and simulation errors.
pub fn run_matrix_with_jobs(
    cap: usize,
    pr_iters: u32,
    jobs: usize,
) -> BenchResult<Vec<MatrixEntry>> {
    run_matrix_configured(cap, pr_iters, jobs, gaasx_core::SearchMode::default())
}

/// [`run_matrix_with_jobs`] with an explicit host search mode for the
/// GaaS-X side (`--search-mode` on the bench binaries). Like the jobs
/// knob, the mode changes only host wall-clock: reports are bit-identical
/// across modes.
///
/// # Errors
///
/// Propagates generator and simulation errors.
pub fn run_matrix_configured(
    cap: usize,
    pr_iters: u32,
    jobs: usize,
    search_mode: gaasx_core::SearchMode,
) -> BenchResult<Vec<MatrixEntry>> {
    let mut out = Vec::new();
    for ds in PaperDataset::GRAPH_DATASETS {
        let graph = load_graph(ds, cap)?;
        let src = traversal_source(&graph);
        // Same unit count for both engines, scaled with the dataset (see
        // `gaasx_bench::scaled_units`).
        let units = crate::scaled_units(ds, cap);
        let mut accel = GaasX::new(GaasXConfig {
            num_banks: units,
            search_mode,
            ..GaasXConfig::paper()
        });
        let mut graphr = GraphR::new(GraphRConfig {
            num_pe: units,
            ..GraphRConfig::paper()
        });
        for algo in ALGORITHMS {
            let (gx, gr) = match algo {
                "pagerank" => (
                    run_gaasx(
                        &mut accel,
                        &PageRank::fixed_iterations(pr_iters),
                        &graph,
                        ds.abbrev(),
                        jobs,
                    )?,
                    graphr.pagerank(&graph, 0.85, pr_iters)?.report,
                ),
                "bfs" => (
                    run_gaasx(
                        &mut accel,
                        &Bfs::from_source(src),
                        &graph,
                        ds.abbrev(),
                        jobs,
                    )?,
                    graphr.bfs(&graph, src)?.report,
                ),
                "sssp" => (
                    run_gaasx(
                        &mut accel,
                        &Sssp::from_source(src),
                        &graph,
                        ds.abbrev(),
                        jobs,
                    )?,
                    graphr.sssp(&graph, src)?.report,
                ),
                _ => unreachable!(),
            };
            out.push(MatrixEntry {
                dataset: ds,
                algorithm: algo,
                gaasx: gx,
                graphr: gr,
            });
        }
    }
    Ok(out)
}

/// Routes one GaaS-X run through the serial engine (`jobs == 1`) or the
/// sharded engine (`jobs > 1`).
fn run_gaasx<A>(
    accel: &mut GaasX,
    algorithm: &A,
    graph: &A::Input,
    label: &str,
    jobs: usize,
) -> BenchResult<RunReport>
where
    A: gaasx_core::ShardableAlgorithm,
{
    Ok(if jobs > 1 {
        accel
            .run_labeled_sharded(algorithm, graph, label, jobs)?
            .report
    } else {
        accel.run_labeled(algorithm, graph, label)?.report
    })
}

/// Table I: the accelerator component inventory.
pub fn table1() -> String {
    let mut t = Table::new(&[
        "Component",
        "Configuration",
        "Area (mm² × 10⁻³)",
        "Power (mW)",
    ]);
    for c in table1_components() {
        t.row_owned(vec![
            c.name.to_string(),
            c.configuration.to_string(),
            format!("{:.2}", c.area_milli_mm2),
            format!("{:.2}", c.power_mw),
        ]);
    }
    t.row_owned(vec![
        "Total".into(),
        String::new(),
        format!("{:.2} mm²", table1_total_area_mm2()),
        format!("{:.2} W", table1_total_power_w()),
    ]);
    format!("Table I — GaaS-X architecture parameters\n\n{t}")
}

/// Table II: dataset characteristics (published sizes plus the scaled
/// instantiations used in this reproduction, with their tile sparsity).
///
/// # Errors
///
/// Propagates generator errors.
pub fn table2(cap: usize) -> BenchResult<String> {
    let mut t = Table::new(&[
        "Dataset",
        "Paper |V|",
        "Paper |E|",
        "Scale",
        "Run |V|",
        "Run |E|",
        "Tiles ≤10% dense",
    ]);
    for ds in PaperDataset::GRAPH_DATASETS {
        let graph = load_graph(ds, cap)?;
        let summary = GraphSummary::compute(&graph)?;
        let profile = TileDensityProfile::compute(&graph, 16)?;
        t.row_owned(vec![
            format!("{} ({})", ds.name(), ds.abbrev()),
            count(u64::from(ds.full_vertices())),
            count(ds.full_edges() as u64),
            format!("{:.4}", scale_for(ds, cap)),
            count(u64::from(summary.num_vertices)),
            count(summary.num_edges as u64),
            format!("{:.1}%", 100.0 * profile.fraction_below(0.10)),
        ]);
    }
    let nf = load_ratings(cap)?;
    t.row_owned(vec![
        "Netflix (NF)".into(),
        format!(
            "{} users",
            count(u64::from(PaperDataset::Netflix.full_vertices()))
        ),
        count(PaperDataset::Netflix.full_edges() as u64),
        format!("{:.4}", scale_for(PaperDataset::Netflix, cap)),
        format!(
            "{}u/{}i",
            count(u64::from(nf.num_users())),
            count(u64::from(nf.num_items()))
        ),
        count(nf.num_ratings() as u64),
        "-".into(),
    ]);
    Ok(format!(
        "Table II — graph datasets (paper sizes vs. scaled instantiations)\n\n{t}"
    ))
}

/// Table III: baseline system configurations.
pub fn table3() -> String {
    let mut t = Table::new(&["System", "Specification", "Power model"]);
    t.row(&[
        "CPU (GridGraph / GraphChi / GAPBS)",
        "Xeon-Bronze-class, multithreaded streaming kernels, measured wall clock",
        "11 W idle-subtracted dynamic (RAPL-style)",
    ]);
    t.row(&[
        "GPU (Gunrock / cuMF)",
        "Titan-V-class roofline: 652 GB/s HBM2, 8x gather inefficiency, 8 us launch",
        "35 W idle-subtracted dynamic (nvidia-smi-style)",
    ]);
    t.row(&[
        "PIM (GraphR)",
        "dense 16x16 tile mapping, 2048 PEs, same device substrate as GaaS-X",
        "Table I device energies",
    ]);
    t.row(&[
        "PIM (GRAM)",
        "digital crossbar PIM, modeled via published ratios vs GraphR",
        "scaled from GraphR",
    ]);
    format!("Table III — baseline system configurations\n\n{t}")
}

/// Fig 5: dense-vs-sparse redundant writes and computations.
///
/// # Errors
///
/// Propagates generator/analysis errors.
pub fn fig5(cap: usize) -> BenchResult<String> {
    let mut t = Table::new(&[
        "Dataset",
        "Writes",
        "Computations (PR)",
        "Computations (SSSP)",
    ]);
    let mut writes = Vec::new();
    let mut prs = Vec::new();
    let mut sssps = Vec::new();
    for ds in PaperDataset::GRAPH_DATASETS {
        let graph = load_graph(ds, cap)?;
        let src = traversal_source(&graph);
        let r = redundancy::analyze(&graph, 16, src)?;
        writes.push(r.write_ratio());
        prs.push(r.pr_compute_ratio());
        sssps.push(r.sssp_compute_ratio());
        t.row_owned(vec![
            ds.abbrev().into(),
            ratio(r.write_ratio()),
            ratio(r.pr_compute_ratio()),
            ratio(r.sssp_compute_ratio()),
        ]);
    }
    t.row_owned(vec![
        "Mean".into(),
        ratio(mean(&writes)),
        ratio(mean(&prs)),
        ratio(mean(&sssps)),
    ]);
    Ok(format!(
        "Fig 5 — ratio of redundant operations in dense mapping to operations \
         in sparse mapping (16×16 tiles)\nPaper: ≈34× writes, ≈23× computations \
         on average; abstract headline 30×/20×.\n\n{t}"
    ))
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn per_algo_table(matrix: &[MatrixEntry], metric: impl Fn(&MatrixEntry) -> f64) -> (Table, f64) {
    let mut t = Table::new(&["Algorithm", "SD", "LJ", "WV", "WG", "AZ", "OR", "GeoMean"]);
    let mut all = Vec::new();
    for algo in ALGORITHMS {
        let mut cells = vec![algo.to_string()];
        let mut row_vals = Vec::new();
        for ds in PaperDataset::GRAPH_DATASETS {
            match matrix
                .iter()
                .find(|e| e.dataset == ds && e.algorithm == algo)
            {
                Some(entry) => {
                    let v = metric(entry);
                    row_vals.push(v);
                    all.push(v);
                    cells.push(ratio(v));
                }
                // A partial matrix renders with a gap instead of
                // aborting the whole figure run.
                None => cells.push("n/a".to_string()),
            }
        }
        cells.push(ratio(geometric_mean(&row_vals).unwrap_or(0.0)));
        t.row_owned(cells);
    }
    (t, geometric_mean(&all).unwrap_or(0.0))
}

/// Fig 11: GaaS-X speedup over GraphR.
pub fn fig11(matrix: &[MatrixEntry]) -> String {
    let (t, geo) = per_algo_table(matrix, |e| e.gaasx.speedup_over(&e.graphr));
    format!(
        "Fig 11 — speedup in execution time of GaaS-X over GraphR\n\
         Paper: geometric mean 7.74×, PR lowest, BFS/SSSP highest.\n\n{t}\n\
         Overall geometric mean: {}\n",
        ratio(geo)
    )
}

/// Fig 12: GaaS-X energy savings over GraphR.
pub fn fig12(matrix: &[MatrixEntry]) -> String {
    let (t, geo) = per_algo_table(matrix, |e| e.gaasx.energy_savings_over(&e.graphr));
    format!(
        "Fig 12 — energy savings of GaaS-X over GraphR\n\
         Paper: geometric mean 22×.\n\n{t}\n\
         Overall geometric mean: {}\n",
        ratio(geo)
    )
}

/// Fig 13: CDF of rows accumulated per MAC operation across all GaaS-X
/// runs of the matrix.
pub fn fig13(matrix: &[MatrixEntry]) -> String {
    let mut hist = Histogram::new(16);
    for e in matrix {
        hist.merge(&e.gaasx.rows_per_mac);
    }
    let cdf = hist.cdf();
    let pmf = hist.pmf();
    let mut t = Table::new(&["Rows accumulated", "Fraction of MAC ops", "Cumulative"]);
    for (i, (p, c)) in pmf.iter().zip(&cdf).enumerate() {
        t.row_owned(vec![
            format!("{}", i + 1),
            format!("{:.3}", p),
            format!("{:.3}", c),
        ]);
    }
    format!(
        "Fig 13 — cumulative distribution of rows accumulated per MAC operation\n\
         Paper: ≈75% of MAC ops accumulate one row; >6 rows ≈3%.\n\n{t}\n\
         Measured: {:.1}% accumulate 1 row; {:.1}% accumulate more than 6 rows; \
         mean {:.2} rows over {} MAC ops.\n",
        100.0 * hist.fraction_at_most(1),
        100.0 * (1.0 - hist.fraction_at_most(6)),
        hist.mean(),
        count(hist.total()),
    )
}

/// Fig 14: speedup and energy savings vs GRAM (AZ, WV, LJ — the datasets
/// GRAM published).
pub fn fig14(matrix: &[MatrixEntry]) -> String {
    let gram_sets = [
        PaperDataset::Amazon,
        PaperDataset::WikiVote,
        PaperDataset::LiveJournal,
    ];
    let mut t = Table::new(&["Algorithm", "Dataset", "Speedup", "Energy savings"]);
    let mut perf = Vec::new();
    let mut energy = Vec::new();
    for e in matrix {
        if !gram_sets.contains(&e.dataset) {
            continue;
        }
        let Some(model) = GramModel::for_algorithm(e.algorithm) else {
            continue; // GRAM published no numbers for this algorithm (CF).
        };
        let gram = model.report_from_graphr(&e.graphr);
        let s = e.gaasx.speedup_over(&gram);
        let en = e.gaasx.energy_savings_over(&gram);
        perf.push(s);
        energy.push(en);
        t.row_owned(vec![
            e.algorithm.into(),
            e.dataset.abbrev().into(),
            ratio(s),
            ratio(en),
        ]);
    }
    format!(
        "Fig 14 — GaaS-X vs GRAM (modeled from published GRAM:GraphR ratios)\n\
         Paper: geometric mean speedup 2.5×, energy savings 5.2×.\n\n{t}\n\
         Geometric means: speedup {}, energy {}\n",
        ratio(geometric_mean(&perf).unwrap_or(0.0)),
        ratio(geometric_mean(&energy).unwrap_or(0.0)),
    )
}

/// CPU/GPU comparison data for Figs 15–16 and the GAPBS paragraph.
///
/// Two views are carried per entry:
///
/// * *measured*: GaaS-X at its full paper configuration (2048 banks)
///   against the software baselines on the **same scaled workload** — an
///   apples-to-apples run, but one on which a 2048-bank chip is badly
///   underutilized (the scaled graph fits in a wave or two);
/// * *projected*: the scaled-units GaaS-X time (structurally equivalent to
///   the full chip on the full dataset, see [`crate::scaled_units`])
///   against the software time linearly extrapolated to the full dataset
///   (`measured / scale`) — conservative for the software side, whose real
///   full-size runs fall out of cache and go out-of-core.
#[derive(Debug, Clone)]
pub struct SoftwareEntry {
    /// Dataset.
    pub dataset: PaperDataset,
    /// Algorithm.
    pub algorithm: &'static str,
    /// Dataset scale factor (for the projection).
    pub scale: f64,
    /// GaaS-X at the paper configuration on the scaled workload.
    pub gaasx_measured: RunReport,
    /// GaaS-X with scaled units (full-dataset-equivalent structure).
    pub gaasx_projected: RunReport,
    /// Measured GridGraph-style CPU report.
    pub cpu: RunReport,
    /// Measured GAPBS-style CPU report.
    pub gapbs: RunReport,
    /// Modeled Gunrock GPU report.
    pub gpu: RunReport,
}

impl SoftwareEntry {
    fn projected_ratio(&self, other: &RunReport, energy: bool) -> f64 {
        // Software time/energy extrapolates linearly to the full dataset.
        let factor = 1.0 / self.scale;
        if energy {
            other.energy.total_nj() * factor / self.gaasx_projected.energy.total_nj()
        } else {
            other.elapsed_ns * factor / self.gaasx_projected.elapsed_ns
        }
    }
}

/// Runs the software baselines for every matrix entry.
///
/// # Errors
///
/// Propagates generator and kernel errors.
pub fn run_software(
    matrix: &[MatrixEntry],
    cap: usize,
    pr_iters: u32,
) -> BenchResult<Vec<SoftwareEntry>> {
    let cpu = GridGraphCpu::new();
    let gapbs = GapbsCpu::new();
    let gpu = GpuModel::titan_v();
    let mut accel = GaasX::new(GaasXConfig::paper());
    let mut out = Vec::new();
    for ds in PaperDataset::GRAPH_DATASETS {
        let graph = load_graph(ds, cap)?;
        let src = traversal_source(&graph);
        for algo in ALGORITHMS {
            let entry = matrix
                .iter()
                .find(|e| e.dataset == ds && e.algorithm == algo)
                .ok_or_else(|| format!("missing matrix entry for {}/{algo}", ds.abbrev()))?;
            let (gx, c, ga, gp) = match algo {
                "pagerank" => (
                    accel
                        .run_labeled(&PageRank::fixed_iterations(pr_iters), &graph, ds.abbrev())?
                        .report,
                    cpu.pagerank(&graph, 0.85, pr_iters)?.report,
                    gapbs.pagerank(&graph, 0.85, pr_iters)?.report,
                    gpu.pagerank(&graph, pr_iters),
                ),
                "bfs" => (
                    accel
                        .run_labeled(&Bfs::from_source(src), &graph, ds.abbrev())?
                        .report,
                    cpu.bfs(&graph, src)?.report,
                    gapbs.bfs(&graph, src)?.report,
                    gpu.bfs(&graph, src)?,
                ),
                "sssp" => (
                    accel
                        .run_labeled(&Sssp::from_source(src), &graph, ds.abbrev())?
                        .report,
                    cpu.sssp(&graph, src)?.report,
                    gapbs.sssp(&graph, src)?.report,
                    gpu.sssp(&graph, src)?,
                ),
                _ => unreachable!(),
            };
            out.push(SoftwareEntry {
                dataset: ds,
                algorithm: algo,
                scale: crate::scale_for(ds, cap),
                gaasx_measured: gx,
                gaasx_projected: entry.gaasx.clone(),
                cpu: c,
                gapbs: ga,
                gpu: gp,
            });
        }
    }
    Ok(out)
}

// The `(Table, [f64; 4])` pair mirrors the figure outputs (rendered table +
// geomean row) one-to-one; naming it would add a type used exactly once.
#[allow(clippy::type_complexity)]
fn software_table(entries: &[SoftwareEntry], energy: bool) -> (Table, [f64; 4]) {
    let mut t = Table::new(&[
        "Algorithm",
        "Dataset",
        "vs GPU (measured)",
        "vs CPU (measured)",
        "vs GPU (projected)",
        "vs CPU (projected)",
    ]);
    let mut acc: [Vec<f64>; 4] = Default::default();
    for e in entries {
        let vals = [
            if energy {
                e.gaasx_measured.energy_savings_over(&e.gpu)
            } else {
                e.gaasx_measured.speedup_over(&e.gpu)
            },
            if energy {
                e.gaasx_measured.energy_savings_over(&e.cpu)
            } else {
                e.gaasx_measured.speedup_over(&e.cpu)
            },
            e.projected_ratio(&e.gpu, energy),
            e.projected_ratio(&e.cpu, energy),
        ];
        let mut cells = vec![e.algorithm.to_string(), e.dataset.abbrev().to_string()];
        for (a, v) in acc.iter_mut().zip(vals) {
            a.push(v);
            cells.push(ratio(v));
        }
        t.row_owned(cells);
    }
    let geo = [
        geometric_mean(&acc[0]).unwrap_or(0.0),
        geometric_mean(&acc[1]).unwrap_or(0.0),
        geometric_mean(&acc[2]).unwrap_or(0.0),
        geometric_mean(&acc[3]).unwrap_or(0.0),
    ];
    (t, geo)
}

/// Fig 15: speedup over the software frameworks.
pub fn fig15(entries: &[SoftwareEntry]) -> String {
    let (t, geo) = software_table(entries, false);
    format!(
        "Fig 15 — speedup in execution time of GaaS-X vs CPU (GridGraph) and \
         GPU (Gunrock)\nPaper: geometric means 805× (CPU) and 12.3× (GPU) on the \
         full datasets.\nMeasured = same scaled workload (2048-bank chip \
         underutilized); projected = full-dataset equivalent (see DESIGN.md).\n\n{t}\n\
         Geometric means — measured: GPU {}, CPU {}; projected: GPU {}, CPU {}\n",
        ratio(geo[0]),
        ratio(geo[1]),
        ratio(geo[2]),
        ratio(geo[3]),
    )
}

/// Fig 16: energy savings over the software frameworks.
pub fn fig16(entries: &[SoftwareEntry]) -> String {
    let (t, geo) = software_table(entries, true);
    format!(
        "Fig 16 — energy savings of GaaS-X vs CPU (GridGraph) and GPU (Gunrock)\n\
         Paper: geometric means 5357× (CPU) and 252× (GPU) on the full datasets.\n\n{t}\n\
         Geometric means — measured: GPU {}, CPU {}; projected: GPU {}, CPU {}\n",
        ratio(geo[0]),
        ratio(geo[1]),
        ratio(geo[2]),
        ratio(geo[3]),
    )
}

/// §V-B GAPBS paragraph: geomean speedup/energy vs the optimized CPU suite.
pub fn gapbs_comparison(entries: &[SoftwareEntry]) -> String {
    let mut t = Table::new(&[
        "Algorithm",
        "Dataset",
        "Speedup (measured)",
        "Energy (measured)",
        "Speedup (projected)",
        "Energy (projected)",
    ]);
    let mut perf = Vec::new();
    let mut energy = Vec::new();
    let mut perf_proj = Vec::new();
    let mut energy_proj = Vec::new();
    for e in entries {
        let s = e.gaasx_measured.speedup_over(&e.gapbs);
        let en = e.gaasx_measured.energy_savings_over(&e.gapbs);
        let sp = e.projected_ratio(&e.gapbs, false);
        let enp = e.projected_ratio(&e.gapbs, true);
        perf.push(s);
        energy.push(en);
        perf_proj.push(sp);
        energy_proj.push(enp);
        t.row_owned(vec![
            e.algorithm.into(),
            e.dataset.abbrev().into(),
            ratio(s),
            ratio(en),
            ratio(sp),
            ratio(enp),
        ]);
    }
    format!(
        "GAPBS comparison (§V-B text)\n\
         Paper: ≈155× speedup, ≈1500× energy savings on the full datasets.\n\n{t}\n\
         Geometric means — measured: speedup {}, energy {}; \
         projected: speedup {}, energy {}\n",
        ratio(geometric_mean(&perf).unwrap_or(0.0)),
        ratio(geometric_mean(&energy).unwrap_or(0.0)),
        ratio(geometric_mean(&perf_proj).unwrap_or(0.0)),
        ratio(geometric_mean(&energy_proj).unwrap_or(0.0)),
    )
}

/// Fig 17: collaborative filtering vs GraphChi (CPU), cuMF (GPU), GraphR.
///
/// # Errors
///
/// Propagates generator and simulation errors.
pub fn fig17(cap: usize, features: usize, epochs: u32) -> BenchResult<String> {
    let ratings = load_ratings(cap)?;
    let scale = scale_for(PaperDataset::Netflix, cap);
    let lr = 0.01;
    let reg = 0.05;
    let seed = 0xcf17;
    let cf = CollaborativeFiltering {
        features,
        epochs,
        learning_rate: lr,
        regularization: reg,
        seed,
    };

    // PIM-vs-PIM comparison at matched, scale-preserving unit counts
    // (see `gaasx_bench::scaled_units`).
    let units = crate::scaled_units(PaperDataset::Netflix, cap);
    let mut accel_scaled = GaasX::new(GaasXConfig {
        num_banks: units,
        ..GaasXConfig::paper()
    });
    let gx_scaled = accel_scaled.run_labeled(&cf, &ratings, "NF")?;
    let mut graphr = GraphR::new(GraphRConfig {
        num_pe: units,
        ..GraphRConfig::paper()
    });
    let gr = graphr.cf(&ratings, features, epochs, lr, reg, seed)?;
    let gr_rmse = gr.result.rmse(&ratings).unwrap_or(f64::NAN);

    // Software comparison at the paper configuration on the same workload.
    let mut accel = GaasX::new(GaasXConfig::paper());
    let gx = accel.run_labeled(&cf, &ratings, "NF")?;
    let gx_rmse = gx.result.rmse(&ratings).unwrap_or(f64::NAN);
    let chi = GraphChiCpu::new().cf(&ratings, features, epochs, lr, reg, seed)?;
    let chi_rmse = chi.result.rmse(&ratings).unwrap_or(f64::NAN);
    let gpu = GpuModel::titan_v().cf(&ratings, features, epochs);

    let project = 1.0 / scale;
    let mut t = Table::new(&[
        "Baseline",
        "Speedup",
        "Energy savings",
        "Speedup (projected)",
    ]);
    t.row_owned(vec![
        "GraphChi (CPU)".into(),
        ratio(gx.report.speedup_over(&chi.report)),
        ratio(gx.report.energy_savings_over(&chi.report)),
        ratio(chi.report.elapsed_ns * project / gx_scaled.report.elapsed_ns),
    ]);
    t.row_owned(vec![
        "cuMF (GPU)".into(),
        ratio(gx.report.speedup_over(&gpu)),
        ratio(gx.report.energy_savings_over(&gpu)),
        ratio(gpu.elapsed_ns * project / gx_scaled.report.elapsed_ns),
    ]);
    t.row_owned(vec![
        "GraphR".into(),
        ratio(gx_scaled.report.speedup_over(&gr.report)),
        ratio(gx_scaled.report.energy_savings_over(&gr.report)),
        "-".into(),
    ]);
    Ok(format!(
        "Fig 17 — collaborative filtering ({} ratings, {} features, {} epochs)\n\
         Paper: speedups 196× / 2× / 4× and energy savings 2962× / 86× / 24× \
         vs CPU / GPU / GraphR.\n\n{t}\n\
         Training RMSE — GaaS-X {:.4}, GraphChi {:.4}, GraphR {:.4}\n",
        count(ratings.num_ratings() as u64),
        features,
        epochs,
        gx_rmse,
        chi_rmse,
        gr_rmse,
    ))
}

/// Per-phase time shares for every (dataset, algorithm, engine) cell of
/// the matrix — the observability companion to Figs 11–12.
pub fn phase_table(matrix: &[MatrixEntry]) -> String {
    let mut t = Table::new(&[
        "Dataset",
        "Algorithm",
        "Engine",
        "load",
        "cam",
        "gather",
        "prop",
        "sfu",
    ]);
    for e in matrix {
        for (engine, report) in [("gaasx", &e.gaasx), ("graphr", &e.graphr)] {
            let share = |phase| {
                let ns = report
                    .phase(phase)
                    .map_or(gaasx_sim::Nanos::ZERO, |p| p.sched_ns);
                if report.elapsed_ns > gaasx_sim::Nanos::ZERO {
                    format!("{:.1}%", 100.0 * ns.ns() / report.elapsed_ns.ns())
                } else {
                    "-".into()
                }
            };
            t.row_owned(vec![
                e.dataset.abbrev().into(),
                e.algorithm.into(),
                engine.into(),
                share(Phase::LoadBlock),
                share(Phase::CamSearch),
                share(Phase::MacGather),
                share(Phase::MacPropagate),
                share(Phase::Sfu),
            ]);
        }
    }
    format!(
        "Per-phase execution time shares (scheduled attribution; \
         each row sums to ~100% with init)\n\n{t}"
    )
}

/// Tracing demo: PageRank on one RMAT graph, GaaS-X vs GraphR, with the
/// per-phase breakdown side by side. When `trace` is given, the GaaS-X
/// run streams its JSONL events there (replayable with `trace_summary`).
/// When `timeline` is given, the run's bank-occupancy timeline is written
/// there as Chrome trace-event JSON (loadable in Perfetto or
/// `chrome://tracing`).
///
/// # Errors
///
/// Propagates generator, simulation, and trace-file errors.
pub fn trace_demo(
    trace: Option<&std::path::Path>,
    timeline: Option<&std::path::Path>,
) -> BenchResult<String> {
    use gaasx_graph::generators::{rmat, RmatConfig};
    use gaasx_sim::{chrome_trace_json, Sink, Timeline, TimelineSink};
    use std::sync::Arc;

    let iters = 5;
    let graph = rmat(&RmatConfig::new(1 << 10, 8_000).with_seed(42))?;
    let mut accel = GaasX::new(GaasXConfig::paper());
    let mut note = String::new();
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    if let Some(path) = trace {
        sinks.push(Arc::new(JsonlSink::create(path)?));
        note.push_str(&format!(
            "\nJSONL events written to {} — replay with `cargo run --bin trace_summary -- {}`.\n",
            path.display(),
            path.display()
        ));
    }
    let timeline_sink = timeline.map(|_| Arc::new(TimelineSink::new()));
    if let Some(sink) = &timeline_sink {
        sinks.push(sink.clone());
    }
    if !sinks.is_empty() {
        accel.set_tracer(Tracer::new(sinks));
    }
    let gx = accel
        .run_labeled(&PageRank::fixed_iterations(iters), &graph, "RMAT")?
        .report;
    if let (Some(path), Some(sink)) = (timeline, &timeline_sink) {
        let tl = Timeline::from_intervals(gx.elapsed_ns, &sink.take());
        std::fs::write(path, chrome_trace_json(&tl))?;
        note.push_str(&format!(
            "Chrome trace written to {} — load in Perfetto (ui.perfetto.dev) or chrome://tracing.\n",
            path.display()
        ));
    }
    if let Some(util) = &gx.utilization {
        note.push_str(&format!(
            "Bank occupancy: mean utilization {:.1}%, critical bank {}, pipeline overlap {:.1}%.\n",
            100.0 * util.mean_utilization(),
            util.critical_bank
                .map_or("-".to_string(), |b| b.to_string()),
            100.0 * util.pipeline_overlap_ratio,
        ));
    }
    let gr = GraphR::new(GraphRConfig::paper())
        .pagerank(&graph, 0.85, iters)?
        .report;

    let mut t = Table::new(&[
        "Phase",
        "GaaS-X (ns)",
        "GaaS-X share",
        "Spans",
        "GraphR (ns)",
        "GraphR share",
        "Spans",
    ]);
    for &phase in Phase::ALL.iter().filter(|&&p| p != Phase::Dispatch) {
        let (a, b) = (gx.phase(phase), gr.phase(phase));
        if a.is_none() && b.is_none() {
            continue;
        }
        let cell = |p: Option<&gaasx_sim::PhaseBreakdown>, elapsed: f64| match p {
            Some(p) => [
                format!("{:.1}", p.sched_ns),
                format!(
                    "{:.1}%",
                    100.0 * p.sched_ns / elapsed.max(f64::MIN_POSITIVE)
                ),
                p.count.to_string(),
            ],
            None => ["-".into(), "-".into(), "-".into()],
        };
        let [an, ashare, ac] = cell(a, gx.elapsed_ns.ns());
        let [bn, bshare, bc] = cell(b, gr.elapsed_ns.ns());
        t.row_owned(vec![phase.name().into(), an, ashare, ac, bn, bshare, bc]);
    }
    Ok(format!(
        "Trace demo — PageRank on RMAT (|V|={}, |E|={}, {iters} iterations)\n\
         Scheduled attribution: each engine's phase column sums to its \
         elapsed time.\n\n{t}\n\
         Elapsed — GaaS-X {:.0} ns, GraphR {:.0} ns (speedup {}).\n{note}",
        graph.num_vertices(),
        graph.num_edges(),
        gx.elapsed_ns,
        gr.elapsed_ns,
        ratio(gx.speedup_over(&gr)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: usize = 3_000;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.contains("MAC crossbar"));
        assert!(t1.contains("2.68") || t1.contains("2.69"));
        assert!(table3().contains("Titan-V"));
    }

    #[test]
    fn table2_renders_at_tiny_scale() {
        let t = table2(TINY).unwrap();
        assert!(t.contains("LiveJournal"));
        assert!(t.contains("Netflix"));
    }

    #[test]
    fn fig5_ratios_exceed_one_on_scale_free_data() {
        let s = fig5(20_000).unwrap();
        assert!(s.contains("Mean"));
    }

    #[test]
    fn matrix_and_figures_run_at_tiny_scale() {
        let matrix = run_matrix(TINY, 2).unwrap();
        assert_eq!(matrix.len(), 18);
        let f11 = fig11(&matrix);
        assert!(f11.contains("geometric mean"));
        let f13 = fig13(&matrix);
        assert!(f13.contains("Cumulative"));
        let f14 = fig14(&matrix);
        assert!(f14.contains("gram") || f14.contains("GRAM"));
    }

    #[test]
    fn sharded_matrix_matches_serial_bit_for_bit() {
        let serial = run_matrix(TINY, 2).unwrap();
        let sharded = run_matrix_with_jobs(TINY, 2, 3).unwrap();
        assert_eq!(serial.len(), sharded.len());
        for (a, b) in serial.iter().zip(&sharded) {
            assert_eq!(
                a.gaasx,
                b.gaasx,
                "{} {} diverged under sharded execution",
                a.dataset.abbrev(),
                a.algorithm
            );
        }
    }

    #[test]
    fn fig17_runs_at_tiny_scale() {
        let s = fig17(2_000, 8, 1).unwrap();
        assert!(s.contains("GraphChi"));
        assert!(s.contains("RMSE"));
    }

    #[test]
    fn phase_table_renders_shares() {
        let matrix = run_matrix(TINY, 2).unwrap();
        let s = phase_table(&matrix);
        assert!(s.contains("gaasx"));
        assert!(s.contains("graphr"));
        assert!(s.contains('%'));
    }

    #[test]
    fn trace_demo_round_trips_through_trace_summary() {
        let path = std::env::temp_dir().join("gaasx_trace_demo_test.jsonl");
        let s = trace_demo(Some(&path), None).unwrap();
        assert!(s.contains("load_block"));
        assert!(s.contains("Elapsed"));
        assert!(s.contains("Bank occupancy"), "utilization note missing");
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = crate::trace::TraceSummary::parse(&text);
        assert!(summary.skipped == 0, "{} skipped lines", summary.skipped);
        assert!(!summary.spans.is_empty());
        assert!(
            !summary.intervals.is_empty(),
            "JsonlSink should stream timeline intervals"
        );
        let banks = summary.bank_rollup();
        assert!(!banks.is_empty(), "dispatch spans should carry bank ids");
        assert!(banks.iter().all(|&(_, _, _, util)| util <= 1.0 + 1e-9));
        let rendered = summary.render();
        assert!(rendered.contains("Per-bank utilization"));
        assert!(rendered.contains("Per-bank timeline occupancy"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_demo_exports_a_chrome_trace() {
        let path = std::env::temp_dir().join("gaasx_trace_demo_test.trace.json");
        let s = trace_demo(None, Some(&path)).unwrap();
        assert!(s.contains("Chrome trace written"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("mac_gather"));
        let _ = std::fs::remove_file(&path);
    }
}
