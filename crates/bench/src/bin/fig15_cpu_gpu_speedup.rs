//! Regenerates Fig 15: speedup over CPU and GPU software frameworks.

#![allow(clippy::unwrap_used)]
use gaasx_bench::experiments::{fig15, run_matrix, run_software};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cap = gaasx_bench::cap_edges();
    let iters = gaasx_bench::pr_iterations();
    let matrix = run_matrix(cap, iters)?;
    let sw = run_software(&matrix, cap, iters)?;
    println!("{}", fig15(&sw));
    Ok(())
}
