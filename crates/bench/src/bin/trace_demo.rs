//! Regenerates the tracing demo: PageRank per-phase breakdown on one
//! RMAT graph, GaaS-X vs GraphR. An optional first path argument streams
//! the GaaS-X run's JSONL events there; an optional `--timeline-out
//! <path>` writes the run's bank-occupancy timeline as Chrome
//! trace-event JSON (load in Perfetto or `chrome://tracing`).

#![allow(clippy::unwrap_used)]
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace = None;
    let mut timeline = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeline-out" => {
                timeline = Some(PathBuf::from(
                    args.next()
                        .ok_or("--timeline-out requires a path argument")?,
                ));
            }
            other => trace = Some(PathBuf::from(other)),
        }
    }
    println!(
        "{}",
        gaasx_bench::experiments::trace_demo(trace.as_deref(), timeline.as_deref())?
    );
    Ok(())
}
