//! Regenerates the tracing demo: PageRank per-phase breakdown on one
//! RMAT graph, GaaS-X vs GraphR. An optional path argument additionally
//! streams the GaaS-X run's JSONL events there.

#![allow(clippy::unwrap_used)]
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().nth(1).map(PathBuf::from);
    println!(
        "{}",
        gaasx_bench::experiments::trace_demo(trace.as_deref())?
    );
    Ok(())
}
