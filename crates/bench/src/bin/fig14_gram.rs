//! Regenerates Fig 14: GaaS-X vs GRAM comparison.

#![allow(clippy::unwrap_used)]
use gaasx_bench::experiments::{fig14, run_matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let matrix = run_matrix(gaasx_bench::cap_edges(), gaasx_bench::pr_iterations())?;
    println!("{}", fig14(&matrix));
    Ok(())
}
