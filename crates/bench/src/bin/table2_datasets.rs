//! Regenerates Table II: graph dataset characteristics.

#![allow(clippy::unwrap_used)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}",
        gaasx_bench::experiments::table2(gaasx_bench::cap_edges())?
    );
    Ok(())
}
