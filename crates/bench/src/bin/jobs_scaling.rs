//! Sharded-execution scaling check: runs the RMAT scaling workload on the
//! serial engine and on [`gaasx_core::ShardedEngine`] at increasing worker
//! counts, verifies the merged reports and algorithm outputs are
//! **bit-identical** to the serial run, and prints the host wall-clock
//! table. Exits nonzero on any mismatch, so CI exercises the parallel
//! path on every run.
//!
//! `--jobs <N>` sets the largest worker count (default `GAASX_JOBS` or 4);
//! the sweep covers 1, 2, …, N in powers of two plus N itself.
//! `GAASX_CAP_EDGES` caps the RMAT edge count (default
//! [`gaasx_bench::DEFAULT_CAP_EDGES`]).

#![allow(clippy::unwrap_used)]
use std::time::Instant;

use gaasx_core::algorithms::{PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig, RunOutcome, ShardableAlgorithm};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_sim::table::{count, Table};

fn jobs_arg() -> Result<usize, String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&j| j >= 1)
                .ok_or_else(|| "--jobs requires a worker count >= 1".into());
        }
    }
    let env = gaasx_bench::jobs();
    Ok(if env > 1 { env } else { 4 })
}

/// 1, 2, 4, … capped at `max`, always ending exactly at `max`.
fn sweep(max: usize) -> Vec<usize> {
    let mut jobs = vec![1];
    let mut j = 2;
    while j < max {
        jobs.push(j);
        j *= 2;
    }
    if max > 1 {
        jobs.push(max);
    }
    jobs
}

struct Timed<T> {
    outcome: RunOutcome<T>,
    wall: f64,
}

fn run<A: ShardableAlgorithm>(
    algorithm: &A,
    input: &A::Input,
    jobs: usize,
) -> Result<Timed<A::Output>, gaasx_core::CoreError> {
    let mut accel = GaasX::new(GaasXConfig::paper());
    let start = Instant::now();
    let outcome = if jobs > 1 {
        accel.run_sharded(algorithm, input, jobs)?
    } else {
        accel.run(algorithm, input)?
    };
    Ok(Timed {
        outcome,
        wall: start.elapsed().as_secs_f64(),
    })
}

fn check<A>(algorithm: &A, input: &A::Input, name: &str, jobs_max: usize) -> Result<Table, String>
where
    A: ShardableAlgorithm,
    A::Output: PartialEq,
{
    let mut t = Table::new(&["jobs", "host wall (s)", "vs jobs=1", "report"]);
    let serial = run(algorithm, input, 1).map_err(|e| e.to_string())?;
    t.row_owned(vec![
        "1".into(),
        format!("{:.3}", serial.wall),
        "1.00x".into(),
        "reference".into(),
    ]);
    for jobs in sweep(jobs_max).into_iter().skip(1) {
        let sharded = run(algorithm, input, jobs).map_err(|e| e.to_string())?;
        if sharded.outcome.report != serial.outcome.report {
            return Err(format!(
                "{name}: jobs={jobs} report diverged from serial \
                 (ops {:?} vs {:?}, elapsed {} vs {} ns, energy {} vs {} nJ)",
                sharded.outcome.report.ops,
                serial.outcome.report.ops,
                sharded.outcome.report.elapsed_ns,
                serial.outcome.report.elapsed_ns,
                sharded.outcome.report.energy.total_nj(),
                serial.outcome.report.energy.total_nj(),
            ));
        }
        if sharded.outcome.result != serial.outcome.result {
            return Err(format!("{name}: jobs={jobs} output diverged from serial"));
        }
        t.row_owned(vec![
            jobs.to_string(),
            format!("{:.3}", sharded.wall),
            format!("{:.2}x", serial.wall / sharded.wall.max(f64::MIN_POSITIVE)),
            "identical".into(),
        ]);
    }
    Ok(t)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jobs_max = jobs_arg()?;
    let cap = gaasx_bench::cap_edges();
    let vertices = (cap / 16).clamp(64, 1 << 17).next_power_of_two();
    let graph = rmat(&RmatConfig::new(vertices as u32, cap).with_seed(17))?;
    let src = gaasx_bench::traversal_source(&graph);
    println!(
        "Sharded-execution scaling — RMAT |V|={} |E|={}, paper configuration, \
         jobs up to {jobs_max}\nEvery sharded run is checked bit-identical \
         (full RunReport + algorithm output) against the serial engine.\n",
        count(graph.num_vertices() as u64),
        count(graph.num_edges() as u64),
    );
    let pr = check(&PageRank::fixed_iterations(5), &graph, "pagerank", jobs_max)?;
    println!("PageRank x5\n\n{pr}");
    let sssp = check(&Sssp::from_source(src), &graph, "sssp", jobs_max)?;
    println!("SSSP\n\n{sssp}");
    println!("All sharded runs matched the serial reference bit-for-bit.");
    Ok(())
}
