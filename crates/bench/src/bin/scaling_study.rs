//! Scaling study: how simulated time and energy per edge evolve as the
//! workload grows from far-below to far-above the accelerator's resident
//! capacity (2048 banks × 128 edges = 262 144 edges).
//!
//! Below capacity the chip is underutilized (per-edge cost falls as waves
//! fill); above it, cost per edge flattens — the wave pipeline is saturated
//! and throughput scales linearly, which is the regime every full-size
//! figure of the paper lives in.

//! `--jobs <N>` runs the GaaS-X side on the sharded engine with `N`
//! worker threads (default `GAASX_JOBS` or 1); the simulated numbers are
//! bit-identical either way. `--search-mode linear|indexed|auto` picks
//! the GaaS-X host hit-vector algorithm (default auto), also
//! report-invariant.

#![allow(clippy::unwrap_used)]
use gaasx_baselines::{GraphR, GraphRConfig};
use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig, SearchMode};
use gaasx_graph::datasets::PaperDataset;
use gaasx_sim::table::{count, ratio, Table};

fn cli_args() -> Result<(usize, SearchMode), String> {
    let mut jobs = gaasx_bench::jobs();
    let mut search_mode = SearchMode::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&j| j >= 1)
                    .ok_or_else(|| String::from("--jobs requires a worker count >= 1"))?;
            }
            "--search-mode" => {
                search_mode = args
                    .next()
                    .ok_or("--search-mode requires a value (linear | indexed | auto)")?
                    .parse()?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((jobs, search_mode))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iters = 5;
    let (jobs, search_mode) = cli_args()?;
    let mut t = Table::new(&[
        "edges",
        "GaaS-X ns/edge/iter",
        "GraphR ns/edge/iter",
        "speedup",
        "energy savings",
    ]);
    for cap in [30_000usize, 100_000, 300_000, 1_000_000] {
        let scale = (cap as f64 / PaperDataset::LiveJournal.full_edges() as f64).min(1.0);
        let graph = PaperDataset::LiveJournal.instantiate_graph(scale)?;
        let mut gx = GaasX::new(GaasXConfig {
            search_mode,
            ..GaasXConfig::paper()
        });
        let pr = PageRank::fixed_iterations(iters);
        let a = if jobs > 1 {
            gx.run_labeled_sharded(&pr, &graph, "LJ", jobs)?.report
        } else {
            gx.run_labeled(&pr, &graph, "LJ")?.report
        };
        let mut gr = GraphR::new(GraphRConfig::paper());
        let b = gr.pagerank(&graph, 0.85, iters)?.report;
        let per = |r: &gaasx_sim::RunReport| r.elapsed_ns / (r.num_edges as f64 * f64::from(iters));
        t.row_owned(vec![
            count(graph.num_edges() as u64),
            format!("{:.3}", per(&a)),
            format!("{:.3}", per(&b)),
            ratio(a.speedup_over(&b)),
            ratio(a.energy_savings_over(&b)),
        ]);
    }
    println!(
        "Scaling study — LiveJournal-class graphs across the 262 K-edge \
         resident capacity (PageRank ×{iters}, full 2048-unit configuration \
         for both engines, {jobs} GaaS-X job(s))\n\n{t}"
    );
    Ok(())
}
