//! Ablation: the ≤16-row accumulation cap vs ADC resolution (the Table I
//! design point: "We activate only up to 16 wordlines in each compute
//! operation ... hence, a 6-bit ADC is sufficient").
//!
//! Under quantized (ADC-saturating) fidelity, raising the cap without
//! raising ADC bits clips large accumulations; this sweep shows the
//! accuracy/efficiency trade that motivates the paper's 16-row/6-bit
//! choice.

#![allow(clippy::unwrap_used)]
use gaasx_baselines::reference;
use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::datasets::PaperDataset;
use gaasx_sim::table::Table;
use gaasx_xbar::Fidelity;

fn main() {
    let graph = PaperDataset::WikiVote.instantiate_graph(0.3).unwrap();
    let oracle = reference::pagerank(&graph, 0.85, 6);
    let pr = PageRank::fixed_iterations(6);

    let mut t = Table::new(&[
        "max rows/MAC",
        "ADC bits",
        "MAC bursts",
        "mean |err| vs oracle",
        "energy (mJ)",
    ]);
    for (cap, adc_bits) in [(4usize, 6u32), (8, 6), (16, 6), (32, 6), (32, 8), (64, 8)] {
        let mut config = GaasXConfig {
            fidelity: Fidelity::Quantized,
            ..GaasXConfig::paper()
        };
        config.mac_geometry.max_active_rows = cap;
        config.mac_geometry.adc_bits = adc_bits;
        let mut accel = GaasX::new(config);
        let out = accel.run(&pr, &graph).unwrap();
        let err: f64 = out
            .result
            .iter()
            .zip(&oracle)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / oracle.len() as f64;
        t.row_owned(vec![
            cap.to_string(),
            adc_bits.to_string(),
            out.report.ops.mac_ops.to_string(),
            format!("{err:.4}"),
            format!("{:.3}", out.report.energy_mj()),
        ]);
    }
    println!(
        "Ablation — accumulation cap vs ADC resolution (WV @ 0.3 scale, \
         PageRank ×6, quantized periphery)\n\n{t}"
    );
}
