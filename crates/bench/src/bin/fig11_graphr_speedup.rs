//! Regenerates Fig 11: GaaS-X speedup over GraphR.

#![allow(clippy::unwrap_used)]
use gaasx_bench::experiments::{fig11, run_matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let matrix = run_matrix(gaasx_bench::cap_edges(), gaasx_bench::pr_iterations())?;
    println!("{}", fig11(&matrix));
    Ok(())
}
