//! Regenerates Fig 5: dense-vs-sparse redundant writes/computations.

#![allow(clippy::unwrap_used)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}",
        gaasx_bench::experiments::fig5(gaasx_bench::cap_edges())?
    );
    Ok(())
}
