//! Ablation: sensitivity of the headline ratios to the calibrated
//! programming-cost constants (DESIGN.md §4b items 1–2).
//!
//! The per-value program latency and the MLC write energy are the two
//! device constants the paper does not publish; this sweep shows how the
//! GaaS-X-vs-GraphR comparison moves across their plausible ranges, so a
//! reader can judge how much of the result is calibration.

#![allow(clippy::unwrap_used)]
use gaasx_baselines::{GraphR, GraphRConfig};
use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::datasets::PaperDataset;
use gaasx_sim::table::{ratio, Table};

fn main() {
    let graph = PaperDataset::Slashdot.instantiate_graph(0.3).unwrap();
    let units = (2048.0 * 0.3) as usize;

    let mut t = Table::new(&[
        "value_program_ns",
        "cell_write_pJ",
        "speedup",
        "energy savings",
    ]);
    for vp in [0.0, 5.0, 10.0, 20.0] {
        for wp in [5.0, 20.0, 50.0] {
            let mut energy = gaasx_xbar::energy::DeviceEnergyModel::paper();
            energy.value_program_ns = gaasx_sim::Nanos::from_ns(vp);
            energy.cell_write_pj = gaasx_sim::Picojoules::from_pj(wp);
            let mut gx = GaasX::new(GaasXConfig {
                num_banks: units,
                energy,
                ..GaasXConfig::paper()
            });
            let a = gx
                .run(&PageRank::fixed_iterations(5), &graph)
                .unwrap()
                .report;
            let mut gr = GraphR::new(GraphRConfig {
                num_pe: units,
                energy,
                ..GraphRConfig::paper()
            });
            let b = gr.pagerank(&graph, 0.85, 5).unwrap().report;
            t.row_owned(vec![
                format!("{vp:.0}"),
                format!("{wp:.0}"),
                ratio(a.speedup_over(&b)),
                ratio(a.energy_savings_over(&b)),
            ]);
        }
    }
    println!(
        "Ablation — programming-cost sensitivity (SD @ 0.3 scale, PageRank ×5)\n\
         Paper-calibrated point: value_program_ns=10, cell_write_pJ=20.\n\n{t}"
    );
}
