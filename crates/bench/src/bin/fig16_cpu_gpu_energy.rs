//! Regenerates Fig 16: energy savings over CPU and GPU frameworks.

#![allow(clippy::unwrap_used)]
use gaasx_bench::experiments::{fig16, run_matrix, run_software};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cap = gaasx_bench::cap_edges();
    let iters = gaasx_bench::pr_iterations();
    let matrix = run_matrix(cap, iters)?;
    let sw = run_software(&matrix, cap, iters)?;
    println!("{}", fig16(&sw));
    Ok(())
}
