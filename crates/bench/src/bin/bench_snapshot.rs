//! Search-mode identity snapshot: runs the standard workload matrix —
//! PageRank, SSSP, BFS, and connected components, each at jobs ∈ {1, 4}
//! with fault injection off and on — under [`SearchMode::Linear`],
//! [`SearchMode::Indexed`], and the cost-modeled [`SearchMode::Auto`]
//! default, asserts the merged `RunReport` and the algorithm output are
//! **bit-identical** across all three modes for every combination, and
//! writes the host wall-clock comparison to `results/BENCH_05.json`.
//!
//! The matrix covers both bank geometries: the Table I configuration
//! (128-row banks) and the [`GaasXConfig::deep_bank`] design point
//! (2048-row banks, same resident edges). At 128 rows the linear host
//! scan is nearly as cheap as the shared per-search accounting, so the
//! indexed win is modest (and the frontier traversals lose outright —
//! the BENCH_06 regression Auto exists to fix); at 2048 rows the O(rows)
//! scan dominates and the O(hits) path pulls far ahead. Auto must track
//! the better fixed mode per row: the full run exits nonzero when any
//! Auto row falls below `--auto-floor` (default 0.95) of
//! `min(linear, indexed)`, on any report divergence, and — without
//! `--baseline` — when Indexed fails the absolute 3× deep-bank PageRank
//! gate. Full-mode wall clocks are the min of five runs per mode, with
//! reps interleaved across modes, so the ratio gates measure the code,
//! not scheduler jitter. Rows that still fall below a ratio floor are
//! re-timed (up to three extra rounds, walls min-merged, before the
//! artifact is written): a transient host spell re-measures clean while
//! a reproducible regression keeps failing.
//!
//! Every cell additionally times the Linear scan under the *scalar*
//! kernel ([`Kernel::Scalar`]) and checks it bit-identical to the packed
//! default, recording the realized word-parallel win as the
//! `packed_vs_scalar` column. Deep-bank rows are gated by
//! `--packed-floor` (default 1.0): the packed kernel must never lose to
//! scalar where the O(rows) scan dominates. Paper-bank rows are reported
//! but not gated — at 128 rows the scan is a sliver of the wall clock,
//! so the ratio there is mostly shared-accounting noise.
//!
//! `--smoke` runs a reduced matrix for CI: identity checks only (all
//! three modes plus the scalar kernel), a small graph, no JSON artifact,
//! no speedup gates. `GAASX_CAP_EDGES` caps the full-matrix edge count
//! and `GAASX_PR_ITERS` the PageRank iterations.
//!
//! `--baseline <path>` switches the full run into perf-regression mode:
//! the artifact is written to `results/BENCH_08.json` (override with
//! `--out <path>`) and every matrix row's Indexed-over-Linear speedup is
//! gated against the `(algorithm, bank, jobs, fault)`-keyed row of the
//! baseline artifact — the run fails when any matched row drops below
//! `baseline * (1 - tolerance)` (`--tolerance`, default 0.5; speedup
//! *ratios* are far more stable than raw wall clocks, but CI machines
//! still jitter). Rows present on only one side are *reported* as
//! added/missing rather than mis-paired or failed, so the row set can
//! evolve across snapshots — BENCH_08 rows key cleanly against the
//! BENCH_07 baseline because the key tuple is unchanged.

#![allow(clippy::unwrap_used)]
use std::time::Instant;

use gaasx_core::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig, RecoveryPolicy, RunOutcome, SearchMode, ShardableAlgorithm};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_sim::table::{count, Table};
use gaasx_xbar::{FaultModel, Kernel};

/// One cell of the workload matrix, measured in all three modes.
struct Row {
    algorithm: &'static str,
    /// Bank geometry: "paper" (128-row) or "deep" (2048-row).
    bank: &'static str,
    jobs: usize,
    fault: bool,
    linear_s: f64,
    indexed_s: f64,
    auto_s: f64,
    /// Linear wall clock under the scalar kernel (packed is the default
    /// for the other three columns).
    scalar_linear_s: f64,
}

impl Row {
    /// Indexed-over-Linear speedup (the baseline-gated ratio).
    fn speedup(&self) -> f64 {
        self.linear_s / self.indexed_s.max(f64::MIN_POSITIVE)
    }

    /// Packed-over-scalar speedup on the Linear scan (the
    /// `--packed-floor`-gated ratio on deep banks).
    fn packed_vs_scalar(&self) -> f64 {
        self.scalar_linear_s / self.linear_s.max(f64::MIN_POSITIVE)
    }

    /// Wall time of the better fixed mode.
    fn best_fixed_s(&self) -> f64 {
        self.linear_s.min(self.indexed_s)
    }

    /// How Auto compares to the better fixed mode: `best / auto`, so 1.0
    /// is parity, above 1.0 Auto wins, below the floor it regressed.
    fn auto_vs_best(&self) -> f64 {
        self.best_fixed_s() / self.auto_s.max(f64::MIN_POSITIVE)
    }
}

fn config(bank: &str, mode: SearchMode, fault: bool) -> GaasXConfig {
    let mut c = if bank == "deep" {
        GaasXConfig::deep_bank()
    } else {
        GaasXConfig::paper()
    };
    c.search_mode = mode;
    if fault {
        // Mild stuck-cell + transient-write model with the standard
        // write-verify/spare-row recovery: runs complete, the fault RNG
        // draws on every programming op, and the memo layer must disable
        // itself — the strictest identity regime.
        c.fault = FaultModel {
            seed: 0xBE05,
            cam_stuck_ber: 1e-4,
            mac_stuck_ber: 1e-4,
            write_fail_rate: 1e-3,
            ..FaultModel::none()
        };
        c.recovery = RecoveryPolicy::standard();
    }
    c
}

fn run_once<A: ShardableAlgorithm>(
    algorithm: &A,
    input: &A::Input,
    jobs: usize,
    cfg: GaasXConfig,
) -> Result<(RunOutcome<A::Output>, f64), String> {
    let mut accel = GaasX::new(cfg);
    let start = Instant::now();
    let outcome = if jobs > 1 {
        accel.run_sharded(algorithm, input, jobs)
    } else {
        accel.run(algorithm, input)
    }
    .map_err(|e| e.to_string())?;
    Ok((outcome, start.elapsed().as_secs_f64()))
}

/// Runs one matrix cell in all three modes and checks bit-identity of
/// Indexed and Auto against the Linear reference.
///
/// Timing takes the minimum of `timing_reps` wall clocks per mode, with
/// the reps *interleaved* across modes (L,I,A, L,I,A, ...) rather than
/// run back-to-back per mode: the runs are deterministic, so repeats
/// only squeeze out host scheduling noise, and interleaving ensures a
/// slow spell on the host machine hits every mode alike instead of
/// skewing whichever mode it landed on.
fn run_pair<A>(
    name: &'static str,
    bank: &'static str,
    algorithm: &A,
    input: &A::Input,
    jobs: usize,
    fault: bool,
    timing_reps: usize,
) -> Result<Row, String>
where
    A: ShardableAlgorithm,
    A::Output: PartialEq,
{
    const MODES: [SearchMode; 3] = [SearchMode::Linear, SearchMode::Indexed, SearchMode::Auto];
    let scalar_linear = |bank, fault| GaasXConfig {
        kernel: Kernel::Scalar,
        ..config(bank, MODES[0], fault)
    };
    // First rep: functional outcomes + identity checks.
    let (lin, linear_s) = run_once(algorithm, input, jobs, config(bank, MODES[0], fault))?;
    let mut walls = [linear_s, 0.0, 0.0];
    for (i, mode) in MODES.into_iter().enumerate().skip(1) {
        let (got, wall) = run_once(algorithm, input, jobs, config(bank, mode, fault))?;
        if lin.report != got.report {
            return Err(format!(
                "{name}: bank={bank} jobs={jobs} fault={fault}: {mode} report diverged from \
                 Linear (ops {:?} vs {:?}, elapsed {} vs {} ns, energy {} vs {} nJ)",
                got.report.ops,
                lin.report.ops,
                got.report.elapsed_ns,
                lin.report.elapsed_ns,
                got.report.energy.total_nj(),
                lin.report.energy.total_nj(),
            ));
        }
        if lin.result != got.result {
            return Err(format!(
                "{name}: bank={bank} jobs={jobs} fault={fault}: {mode} output diverged from Linear"
            ));
        }
        walls[i] = wall;
    }
    // Kernel identity: the scalar reference on the same Linear cell must
    // be bit-identical to the packed default.
    let (sca, mut scalar_linear_s) = run_once(algorithm, input, jobs, scalar_linear(bank, fault))?;
    if lin.report != sca.report || lin.result != sca.result {
        return Err(format!(
            "{name}: bank={bank} jobs={jobs} fault={fault}: scalar kernel diverged from packed \
             on the Linear cell (elapsed {} vs {} ns)",
            sca.report.elapsed_ns, lin.report.elapsed_ns,
        ));
    }
    // Remaining reps: timing only.
    for _ in 1..timing_reps.max(1) {
        for (i, mode) in MODES.into_iter().enumerate() {
            let (_, wall) = run_once(algorithm, input, jobs, config(bank, mode, fault))?;
            walls[i] = walls[i].min(wall);
        }
        let (_, wall) = run_once(algorithm, input, jobs, scalar_linear(bank, fault))?;
        scalar_linear_s = scalar_linear_s.min(wall);
    }
    Ok(Row {
        algorithm: name,
        bank,
        jobs,
        fault,
        linear_s: walls[0],
        indexed_s: walls[1],
        auto_s: walls[2],
        scalar_linear_s,
    })
}

/// One `(algorithm, bank, jobs, fault)` row recovered from a baseline
/// artifact, with its recorded speedup.
struct BaselineRow {
    algorithm: String,
    bank: String,
    jobs: usize,
    fault: bool,
    speedup: f64,
}

use gaasx_bench::artifact::{self, field, SearchModeArtifact, SearchModeRow};

/// Parses the `runs` rows out of a `BENCH_0x.json` artifact. Lines that
/// don't carry an `algorithm` field (header, brackets) are skipped.
fn parse_baseline(text: &str) -> Vec<BaselineRow> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineRow {
                algorithm: field(line, "algorithm")?.to_string(),
                bank: field(line, "bank")?.to_string(),
                jobs: field(line, "jobs")?.parse().ok()?,
                fault: field(line, "fault")?.parse().ok()?,
                speedup: field(line, "speedup")?.parse().ok()?,
            })
        })
        .collect()
}

/// Ratio floors get this many *extra* timing rounds on rows that fail:
/// a transient host spell re-measures clean and the min-merge clears the
/// floor, while a reproducible regression keeps failing every round.
/// Retries cost only the failing rows (reps × four configs each), so
/// three rounds stay cheap even when several rows sit near a floor.
const GATE_RETRY_ROUNDS: usize = 3;

/// Pairs every current row with the baseline row sharing its
/// `(algorithm, bank, jobs, fault)` key, returning `(row index, baseline
/// speedup)` pairs. Rows present on only one side are reported as
/// added/missing and never mis-paired; pairing happens once, before the
/// retry rounds re-evaluate the ratios.
fn pair_baseline(rows: &[Row], baseline: &[BaselineRow]) -> Vec<(usize, f64)> {
    let mut matched = Vec::new();
    let mut added = 0usize;
    for (i, r) in rows.iter().enumerate() {
        let key = (r.algorithm, r.bank, r.jobs, r.fault);
        match baseline
            .iter()
            .find(|b| (b.algorithm.as_str(), b.bank.as_str(), b.jobs, b.fault) == key)
        {
            Some(b) => matched.push((i, b.speedup)),
            None => {
                added += 1;
                println!(
                    "perf-gate: row {} bank={} jobs={} fault={} added since baseline — not gated",
                    r.algorithm, r.bank, r.jobs, r.fault
                );
            }
        }
    }
    let mut missing = 0usize;
    for b in baseline {
        let here = rows.iter().any(|r| {
            (r.algorithm, r.bank, r.jobs, r.fault)
                == (b.algorithm.as_str(), b.bank.as_str(), b.jobs, b.fault)
        });
        if !here {
            missing += 1;
            println!(
                "perf-gate: baseline row {} bank={} jobs={} fault={} missing from this run",
                b.algorithm, b.bank, b.jobs, b.fault
            );
        }
    }
    if added + missing > 0 {
        println!("perf-gate: row-set drift vs baseline: {added} added, {missing} missing.");
    }
    matched
}

/// Matched rows whose Indexed-over-Linear speedup fell below
/// `baseline * (1 - tolerance)`, as `(row index, baseline speedup)`.
fn baseline_failures(rows: &[Row], matched: &[(usize, f64)], tolerance: f64) -> Vec<(usize, f64)> {
    matched
        .iter()
        .filter(|&&(i, base)| rows[i].speedup() < base * (1.0 - tolerance))
        .copied()
        .collect()
}

fn describe_baseline_failure(r: &Row, base: f64, tolerance: f64) -> String {
    format!(
        "{} bank={} jobs={} fault={}: speedup {:.3}x fell below {:.3}x \
         (baseline {:.3}x, tolerance {:.0}%)",
        r.algorithm,
        r.bank,
        r.jobs,
        r.fault,
        r.speedup(),
        base * (1.0 - tolerance),
        base,
        100.0 * tolerance,
    )
}

/// Deep-bank rows where the packed Linear scan fell below `floor` of the
/// scalar kernel. Paper-bank rows are never gated: their 128-row scans
/// are too small a wall-clock fraction for the ratio to be signal.
fn packed_floor_failures(rows: &[Row], floor: f64) -> Vec<usize> {
    rows.iter()
        .enumerate()
        .filter(|(_, r)| r.bank == "deep" && r.packed_vs_scalar() < floor)
        .map(|(i, _)| i)
        .collect()
}

fn describe_packed_failure(r: &Row, floor: f64) -> String {
    format!(
        "{} bank={} jobs={} fault={}: packed linear {:.3}s is {:.3}x of scalar {:.3}s \
         (floor {floor:.2}x)",
        r.algorithm,
        r.bank,
        r.jobs,
        r.fault,
        r.linear_s,
        r.packed_vs_scalar(),
        r.scalar_linear_s,
    )
}

/// Rows where Auto fell below `floor` of the better fixed mode.
fn auto_floor_failures(rows: &[Row], floor: f64) -> Vec<usize> {
    rows.iter()
        .enumerate()
        .filter(|(_, r)| r.auto_vs_best() < floor)
        .map(|(i, _)| i)
        .collect()
}

fn describe_auto_failure(r: &Row, floor: f64) -> String {
    format!(
        "{} bank={} jobs={} fault={}: auto {:.3}s is {:.3}x of the better fixed mode \
         {:.3}s (floor {floor:.2}x)",
        r.algorithm,
        r.bank,
        r.jobs,
        r.fault,
        r.auto_s,
        r.auto_vs_best(),
        r.best_fixed_s(),
    )
}

/// Bridges the timing rows into the shared serialization contract
/// ([`gaasx_bench::artifact`]) so the committed artifact and this
/// writer can never drift apart.
fn json_artifact(rows: &[Row], edges: u64, pr_iters: u32) -> String {
    artifact::render(&SearchModeArtifact {
        edges,
        pr_iterations: pr_iters,
        rows: rows
            .iter()
            .map(|r| SearchModeRow {
                algorithm: r.algorithm.to_string(),
                bank: r.bank.to_string(),
                jobs: r.jobs,
                fault: r.fault,
                linear_wall_s: r.linear_s,
                indexed_wall_s: r.indexed_s,
                auto_wall_s: r.auto_s,
                speedup: r.speedup(),
                auto_vs_best: r.auto_vs_best(),
                scalar_linear_wall_s: Some(r.scalar_linear_s),
                packed_vs_scalar: Some(r.packed_vs_scalar()),
            })
            .collect(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut smoke = false;
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut tolerance = 0.5f64;
    let mut auto_floor = 0.95f64;
    let mut packed_floor = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--baseline" => {
                baseline_path = Some(args.next().ok_or("--baseline requires a path argument")?);
            }
            "--out" => {
                out_path = Some(args.next().ok_or("--out requires a path argument")?);
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or("--tolerance requires a fraction in [0, 1)")?;
            }
            "--auto-floor" => {
                auto_floor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or("--auto-floor requires a fraction in [0, 1]")?;
            }
            "--packed-floor" => {
                packed_floor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f| (0.0..=4.0).contains(f))
                    .ok_or("--packed-floor requires a ratio in [0, 4]")?;
            }
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }
    let (cap, pr_iters, jobs_list): (usize, u32, &[usize]) = if smoke {
        (4_000, 3, &[1, 2])
    } else {
        (
            gaasx_bench::cap_edges(),
            gaasx_bench::pr_iterations(),
            &[1, 4],
        )
    };
    // Smoke checks identity only; full runs time each mode three times
    // (interleaved across modes, min kept) so the ratio gates are stable
    // against host jitter.
    let timing_reps = if smoke { 1 } else { 5 };
    let vertices = (cap / 16).clamp(64, 1 << 17).next_power_of_two();
    let graph = rmat(&RmatConfig::new(vertices as u32, cap).with_seed(29))?;
    let src = gaasx_bench::traversal_source(&graph);
    println!(
        "Search-mode snapshot — RMAT |V|={} |E|={}, PageRank x{pr_iters}, \
         jobs {jobs_list:?}, fault off/on{}\nEvery cell runs Linear, Indexed, and Auto \
         and is checked bit-identical (full RunReport + output).\n",
        count(graph.num_vertices() as u64),
        count(graph.num_edges() as u64),
        if smoke { " (smoke)" } else { "" },
    );

    let pagerank = PageRank::fixed_iterations(pr_iters);
    // Dispatches one matrix cell by algorithm name, so the gate-retry
    // rounds can re-measure exactly the rows that failed a ratio floor.
    let measure = |name: &'static str, bank: &'static str, jobs, fault| -> Result<Row, String> {
        match name {
            "pagerank" => run_pair(name, bank, &pagerank, &graph, jobs, fault, timing_reps),
            "sssp" => run_pair(
                name,
                bank,
                &Sssp::from_source(src),
                &graph,
                jobs,
                fault,
                timing_reps,
            ),
            "bfs" => run_pair(
                name,
                bank,
                &Bfs::from_source(src),
                &graph,
                jobs,
                fault,
                timing_reps,
            ),
            "cc" => run_pair(
                name,
                bank,
                &ConnectedComponents::new(),
                &graph,
                jobs,
                fault,
                timing_reps,
            ),
            other => Err(format!("unknown algorithm `{other}`")),
        }
    };
    let mut rows: Vec<Row> = Vec::new();
    for &jobs in jobs_list {
        for fault in [false, true] {
            for alg in ["pagerank", "sssp", "bfs", "cc"] {
                rows.push(measure(alg, "paper", jobs, fault)?);
            }
        }
    }
    // The deep-bank design point (2048-row banks): the regime where the
    // linear scan's O(rows) cost dominates the shared per-search work.
    for &jobs in jobs_list {
        for fault in [false, true] {
            rows.push(measure("pagerank", "deep", jobs, fault)?);
        }
    }

    // Ratio floors are noise-hardened: rows that fail get re-timed with
    // the same interleaved min-of-reps protocol and their walls
    // min-merged before the verdict (and before the artifact is
    // written), so a transient host spell cannot fail the run while a
    // regression that reproduces across rounds still does.
    let matched: Vec<(usize, f64)> = if smoke {
        Vec::new()
    } else if let Some(bpath) = &baseline_path {
        let text = std::fs::read_to_string(bpath)
            .map_err(|e| format!("cannot read baseline {bpath}: {e}"))?;
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            return Err(format!("baseline {bpath} holds no parseable runs").into());
        }
        pair_baseline(&rows, &baseline)
    } else {
        Vec::new()
    };
    if !smoke {
        for round in 1..=GATE_RETRY_ROUNDS {
            let mut retry: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            retry.extend(auto_floor_failures(&rows, auto_floor));
            retry.extend(packed_floor_failures(&rows, packed_floor));
            retry.extend(
                baseline_failures(&rows, &matched, tolerance)
                    .iter()
                    .map(|&(i, _)| i),
            );
            if retry.is_empty() {
                break;
            }
            println!(
                "gate-retry round {round}/{GATE_RETRY_ROUNDS}: re-timing {} row(s) below a \
                 ratio floor.",
                retry.len()
            );
            for &i in &retry {
                let fresh = measure(rows[i].algorithm, rows[i].bank, rows[i].jobs, rows[i].fault)?;
                let r = &mut rows[i];
                r.linear_s = r.linear_s.min(fresh.linear_s);
                r.indexed_s = r.indexed_s.min(fresh.indexed_s);
                r.auto_s = r.auto_s.min(fresh.auto_s);
                r.scalar_linear_s = r.scalar_linear_s.min(fresh.scalar_linear_s);
            }
        }
    }

    let mut t = Table::new(&[
        "algorithm",
        "bank",
        "jobs",
        "fault",
        "linear (s)",
        "indexed (s)",
        "auto (s)",
        "scalar-lin (s)",
        "speedup",
        "auto/best",
        "pkd/scl",
        "report",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.algorithm.into(),
            r.bank.into(),
            r.jobs.to_string(),
            if r.fault { "on" } else { "off" }.into(),
            format!("{:.3}", r.linear_s),
            format!("{:.3}", r.indexed_s),
            format!("{:.3}", r.auto_s),
            format!("{:.3}", r.scalar_linear_s),
            format!("{:.2}x", r.speedup()),
            format!("{:.2}x", r.auto_vs_best()),
            format!("{:.2}x", r.packed_vs_scalar()),
            "identical".into(),
        ]);
    }
    println!("{t}");

    if !smoke {
        let path = out_path.as_deref().unwrap_or(if baseline_path.is_some() {
            "results/BENCH_08.json"
        } else {
            "results/BENCH_05.json"
        });
        std::fs::write(
            path,
            json_artifact(&rows, graph.num_edges() as u64, pr_iters),
        )?;
        println!("Wrote {path}");
        let pick = |bank: &str| {
            rows.iter()
                .find(|r| r.algorithm == "pagerank" && r.bank == bank && r.jobs == 1 && !r.fault)
                .expect("pagerank jobs=1 fault=off row")
        };
        let paper = pick("paper");
        let deep = pick("deep");
        println!(
            "PageRank, paper banks (128-row): Indexed {:.2}x faster than Linear \
             (Amdahl-limited: the 128-entry scan costs about as much as the \
             shared per-search accounting).",
            paper.speedup()
        );
        let auto_failures = auto_floor_failures(&rows, auto_floor);
        if !auto_failures.is_empty() {
            return Err(format!(
                "auto-gate: {} row(s) below {auto_floor:.2}x of the better fixed mode:\n  {}",
                auto_failures.len(),
                auto_failures
                    .iter()
                    .map(|&i| describe_auto_failure(&rows[i], auto_floor))
                    .collect::<Vec<_>>()
                    .join("\n  "),
            )
            .into());
        }
        println!("auto-gate: every Auto row within {auto_floor:.2}x of the better fixed mode.");
        let deep_packed = pick("deep").packed_vs_scalar();
        println!(
            "PageRank, deep banks: packed Linear scan {deep_packed:.2}x over the scalar kernel \
             (word-parallel bit planes, 64 rows per XOR/AND)."
        );
        let packed_failures = packed_floor_failures(&rows, packed_floor);
        if !packed_failures.is_empty() {
            return Err(format!(
                "packed-gate: {} deep-bank row(s) below {packed_floor:.2}x of the scalar \
                 kernel:\n  {}",
                packed_failures.len(),
                packed_failures
                    .iter()
                    .map(|&i| describe_packed_failure(&rows[i], packed_floor))
                    .collect::<Vec<_>>()
                    .join("\n  "),
            )
            .into());
        }
        println!(
            "packed-gate: every deep-bank row at or above {packed_floor:.2}x of the scalar kernel."
        );
        if let Some(bpath) = &baseline_path {
            let failures = baseline_failures(&rows, &matched, tolerance);
            if !failures.is_empty() {
                return Err(format!(
                    "perf-gate: {} row(s) regressed vs {bpath}:\n  {}",
                    failures.len(),
                    failures
                        .iter()
                        .map(|&(i, base)| describe_baseline_failure(&rows[i], base, tolerance))
                        .collect::<Vec<_>>()
                        .join("\n  "),
                )
                .into());
            }
            println!(
                "perf-gate: all matched rows within {:.0}% of {bpath}.",
                100.0 * tolerance
            );
        } else if deep.speedup() < 3.0 {
            return Err(format!(
                "deep-bank PageRank Indexed speedup {:.2}x below the 3x gate \
                 (linear {:.3}s, indexed {:.3}s)",
                deep.speedup(),
                deep.linear_s,
                deep.indexed_s,
            )
            .into());
        }
        if baseline_path.is_none() {
            println!(
                "PageRank matrix workload, deep banks (2048-row): Indexed {:.2}x \
                 faster than Linear (gate: >= 3x).",
                deep.speedup()
            );
        }
    }
    println!("All search-mode runs matched bit-for-bit.");
    Ok(())
}
