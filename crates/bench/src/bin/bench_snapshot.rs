//! Search-mode identity snapshot: runs the standard workload matrix —
//! PageRank, SSSP, BFS, and connected components, each at jobs ∈ {1, 4}
//! with fault injection off and on — under [`SearchMode::Linear`],
//! [`SearchMode::Indexed`], and the cost-modeled [`SearchMode::Auto`]
//! default, asserts the merged `RunReport` and the algorithm output are
//! **bit-identical** across all three modes for every combination, and
//! writes the host wall-clock comparison to `results/BENCH_05.json`.
//!
//! The matrix covers both bank geometries: the Table I configuration
//! (128-row banks) and the [`GaasXConfig::deep_bank`] design point
//! (2048-row banks, same resident edges). At 128 rows the linear host
//! scan is nearly as cheap as the shared per-search accounting, so the
//! indexed win is modest (and the frontier traversals lose outright —
//! the BENCH_06 regression Auto exists to fix); at 2048 rows the O(rows)
//! scan dominates and the O(hits) path pulls far ahead. Auto must track
//! the better fixed mode per row: the full run exits nonzero when any
//! Auto row falls below `--auto-floor` (default 0.95) of
//! `min(linear, indexed)`, on any report divergence, and — without
//! `--baseline` — when Indexed fails the absolute 3× deep-bank PageRank
//! gate. Full-mode wall clocks are the min of five runs per mode, with
//! reps interleaved across modes, so the ratio gates measure the code,
//! not scheduler jitter.
//!
//! `--smoke` runs a reduced matrix for CI: identity checks only (all
//! three modes), a small graph, no JSON artifact, no speedup gates.
//! `GAASX_CAP_EDGES` caps the full-matrix edge count and `GAASX_PR_ITERS`
//! the PageRank iterations.
//!
//! `--baseline <path>` switches the full run into perf-regression mode:
//! the artifact is written to `results/BENCH_07.json` instead and every
//! matrix row's Indexed-over-Linear speedup is gated against the
//! `(algorithm, bank, jobs, fault)`-keyed row of the baseline artifact —
//! the run fails when any matched row drops below
//! `baseline * (1 - tolerance)` (`--tolerance`, default 0.5; speedup
//! *ratios* are far more stable than raw wall clocks, but CI machines
//! still jitter). Rows present on only one side are *reported* as
//! added/missing rather than mis-paired or failed, so the row set can
//! evolve across snapshots.

#![allow(clippy::unwrap_used)]
use std::time::Instant;

use gaasx_core::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig, RecoveryPolicy, RunOutcome, SearchMode, ShardableAlgorithm};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_sim::table::{count, Table};
use gaasx_xbar::FaultModel;

/// One cell of the workload matrix, measured in all three modes.
struct Row {
    algorithm: &'static str,
    /// Bank geometry: "paper" (128-row) or "deep" (2048-row).
    bank: &'static str,
    jobs: usize,
    fault: bool,
    linear_s: f64,
    indexed_s: f64,
    auto_s: f64,
}

impl Row {
    /// Indexed-over-Linear speedup (the baseline-gated ratio).
    fn speedup(&self) -> f64 {
        self.linear_s / self.indexed_s.max(f64::MIN_POSITIVE)
    }

    /// Wall time of the better fixed mode.
    fn best_fixed_s(&self) -> f64 {
        self.linear_s.min(self.indexed_s)
    }

    /// How Auto compares to the better fixed mode: `best / auto`, so 1.0
    /// is parity, above 1.0 Auto wins, below the floor it regressed.
    fn auto_vs_best(&self) -> f64 {
        self.best_fixed_s() / self.auto_s.max(f64::MIN_POSITIVE)
    }
}

fn config(bank: &str, mode: SearchMode, fault: bool) -> GaasXConfig {
    let mut c = if bank == "deep" {
        GaasXConfig::deep_bank()
    } else {
        GaasXConfig::paper()
    };
    c.search_mode = mode;
    if fault {
        // Mild stuck-cell + transient-write model with the standard
        // write-verify/spare-row recovery: runs complete, the fault RNG
        // draws on every programming op, and the memo layer must disable
        // itself — the strictest identity regime.
        c.fault = FaultModel {
            seed: 0xBE05,
            cam_stuck_ber: 1e-4,
            mac_stuck_ber: 1e-4,
            write_fail_rate: 1e-3,
            ..FaultModel::none()
        };
        c.recovery = RecoveryPolicy::standard();
    }
    c
}

fn run_once<A: ShardableAlgorithm>(
    algorithm: &A,
    input: &A::Input,
    jobs: usize,
    cfg: GaasXConfig,
) -> Result<(RunOutcome<A::Output>, f64), String> {
    let mut accel = GaasX::new(cfg);
    let start = Instant::now();
    let outcome = if jobs > 1 {
        accel.run_sharded(algorithm, input, jobs)
    } else {
        accel.run(algorithm, input)
    }
    .map_err(|e| e.to_string())?;
    Ok((outcome, start.elapsed().as_secs_f64()))
}

/// Runs one matrix cell in all three modes and checks bit-identity of
/// Indexed and Auto against the Linear reference.
///
/// Timing takes the minimum of `timing_reps` wall clocks per mode, with
/// the reps *interleaved* across modes (L,I,A, L,I,A, ...) rather than
/// run back-to-back per mode: the runs are deterministic, so repeats
/// only squeeze out host scheduling noise, and interleaving ensures a
/// slow spell on the host machine hits every mode alike instead of
/// skewing whichever mode it landed on.
fn run_pair<A>(
    name: &'static str,
    bank: &'static str,
    algorithm: &A,
    input: &A::Input,
    jobs: usize,
    fault: bool,
    timing_reps: usize,
) -> Result<Row, String>
where
    A: ShardableAlgorithm,
    A::Output: PartialEq,
{
    const MODES: [SearchMode; 3] = [SearchMode::Linear, SearchMode::Indexed, SearchMode::Auto];
    // First rep: functional outcomes + identity checks.
    let (lin, linear_s) = run_once(algorithm, input, jobs, config(bank, MODES[0], fault))?;
    let mut walls = [linear_s, 0.0, 0.0];
    for (i, mode) in MODES.into_iter().enumerate().skip(1) {
        let (got, wall) = run_once(algorithm, input, jobs, config(bank, mode, fault))?;
        if lin.report != got.report {
            return Err(format!(
                "{name}: bank={bank} jobs={jobs} fault={fault}: {mode} report diverged from \
                 Linear (ops {:?} vs {:?}, elapsed {} vs {} ns, energy {} vs {} nJ)",
                got.report.ops,
                lin.report.ops,
                got.report.elapsed_ns,
                lin.report.elapsed_ns,
                got.report.energy.total_nj(),
                lin.report.energy.total_nj(),
            ));
        }
        if lin.result != got.result {
            return Err(format!(
                "{name}: bank={bank} jobs={jobs} fault={fault}: {mode} output diverged from Linear"
            ));
        }
        walls[i] = wall;
    }
    // Remaining reps: timing only.
    for _ in 1..timing_reps.max(1) {
        for (i, mode) in MODES.into_iter().enumerate() {
            let (_, wall) = run_once(algorithm, input, jobs, config(bank, mode, fault))?;
            walls[i] = walls[i].min(wall);
        }
    }
    Ok(Row {
        algorithm: name,
        bank,
        jobs,
        fault,
        linear_s: walls[0],
        indexed_s: walls[1],
        auto_s: walls[2],
    })
}

/// One `(algorithm, bank, jobs, fault)` row recovered from a baseline
/// artifact, with its recorded speedup.
struct BaselineRow {
    algorithm: String,
    bank: String,
    jobs: usize,
    fault: bool,
    speedup: f64,
}

use gaasx_bench::artifact::{self, field, SearchModeArtifact, SearchModeRow};

/// Parses the `runs` rows out of a `BENCH_0x.json` artifact. Lines that
/// don't carry an `algorithm` field (header, brackets) are skipped.
fn parse_baseline(text: &str) -> Vec<BaselineRow> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineRow {
                algorithm: field(line, "algorithm")?.to_string(),
                bank: field(line, "bank")?.to_string(),
                jobs: field(line, "jobs")?.parse().ok()?,
                fault: field(line, "fault")?.parse().ok()?,
                speedup: field(line, "speedup")?.parse().ok()?,
            })
        })
        .collect()
}

/// Gates every current row against the baseline row sharing its
/// `(algorithm, bank, jobs, fault)` key. Returns the failures; rows
/// present on only one side are reported as added/missing and never
/// mis-paired or failed.
fn gate_against_baseline(rows: &[Row], baseline: &[BaselineRow], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let mut added = 0usize;
    for r in rows {
        let key = (r.algorithm, r.bank, r.jobs, r.fault);
        let Some(b) = baseline
            .iter()
            .find(|b| (b.algorithm.as_str(), b.bank.as_str(), b.jobs, b.fault) == key)
        else {
            added += 1;
            println!(
                "perf-gate: row {} bank={} jobs={} fault={} added since baseline — not gated",
                r.algorithm, r.bank, r.jobs, r.fault
            );
            continue;
        };
        let floor = b.speedup * (1.0 - tolerance);
        if r.speedup() < floor {
            failures.push(format!(
                "{} bank={} jobs={} fault={}: speedup {:.3}x fell below {:.3}x \
                 (baseline {:.3}x, tolerance {:.0}%)",
                r.algorithm,
                r.bank,
                r.jobs,
                r.fault,
                r.speedup(),
                floor,
                b.speedup,
                100.0 * tolerance,
            ));
        }
    }
    let mut missing = 0usize;
    for b in baseline {
        let here = rows.iter().any(|r| {
            (r.algorithm, r.bank, r.jobs, r.fault)
                == (b.algorithm.as_str(), b.bank.as_str(), b.jobs, b.fault)
        });
        if !here {
            missing += 1;
            println!(
                "perf-gate: baseline row {} bank={} jobs={} fault={} missing from this run",
                b.algorithm, b.bank, b.jobs, b.fault
            );
        }
    }
    if added + missing > 0 {
        println!("perf-gate: row-set drift vs baseline: {added} added, {missing} missing.");
    }
    failures
}

/// Rows where Auto fell below `floor` of the better fixed mode.
fn gate_auto_floor(rows: &[Row], floor: f64) -> Vec<String> {
    rows.iter()
        .filter(|r| r.auto_vs_best() < floor)
        .map(|r| {
            format!(
                "{} bank={} jobs={} fault={}: auto {:.3}s is {:.3}x of the better fixed mode \
                 {:.3}s (floor {floor:.2}x)",
                r.algorithm,
                r.bank,
                r.jobs,
                r.fault,
                r.auto_s,
                r.auto_vs_best(),
                r.best_fixed_s(),
            )
        })
        .collect()
}

/// Bridges the timing rows into the shared serialization contract
/// ([`gaasx_bench::artifact`]) so the committed artifact and this
/// writer can never drift apart.
fn json_artifact(rows: &[Row], edges: u64, pr_iters: u32) -> String {
    artifact::render(&SearchModeArtifact {
        edges,
        pr_iterations: pr_iters,
        rows: rows
            .iter()
            .map(|r| SearchModeRow {
                algorithm: r.algorithm.to_string(),
                bank: r.bank.to_string(),
                jobs: r.jobs,
                fault: r.fault,
                linear_wall_s: r.linear_s,
                indexed_wall_s: r.indexed_s,
                auto_wall_s: r.auto_s,
                speedup: r.speedup(),
                auto_vs_best: r.auto_vs_best(),
            })
            .collect(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut smoke = false;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 0.5f64;
    let mut auto_floor = 0.95f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--baseline" => {
                baseline_path = Some(args.next().ok_or("--baseline requires a path argument")?);
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or("--tolerance requires a fraction in [0, 1)")?;
            }
            "--auto-floor" => {
                auto_floor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or("--auto-floor requires a fraction in [0, 1]")?;
            }
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }
    let (cap, pr_iters, jobs_list): (usize, u32, &[usize]) = if smoke {
        (4_000, 3, &[1, 2])
    } else {
        (
            gaasx_bench::cap_edges(),
            gaasx_bench::pr_iterations(),
            &[1, 4],
        )
    };
    // Smoke checks identity only; full runs time each mode three times
    // (interleaved across modes, min kept) so the ratio gates are stable
    // against host jitter.
    let timing_reps = if smoke { 1 } else { 5 };
    let vertices = (cap / 16).clamp(64, 1 << 17).next_power_of_two();
    let graph = rmat(&RmatConfig::new(vertices as u32, cap).with_seed(29))?;
    let src = gaasx_bench::traversal_source(&graph);
    println!(
        "Search-mode snapshot — RMAT |V|={} |E|={}, PageRank x{pr_iters}, \
         jobs {jobs_list:?}, fault off/on{}\nEvery cell runs Linear, Indexed, and Auto \
         and is checked bit-identical (full RunReport + output).\n",
        count(graph.num_vertices() as u64),
        count(graph.num_edges() as u64),
        if smoke { " (smoke)" } else { "" },
    );

    let pagerank = PageRank::fixed_iterations(pr_iters);
    let mut rows: Vec<Row> = Vec::new();
    for &jobs in jobs_list {
        for fault in [false, true] {
            rows.push(run_pair(
                "pagerank",
                "paper",
                &pagerank,
                &graph,
                jobs,
                fault,
                timing_reps,
            )?);
            rows.push(run_pair(
                "sssp",
                "paper",
                &Sssp::from_source(src),
                &graph,
                jobs,
                fault,
                timing_reps,
            )?);
            rows.push(run_pair(
                "bfs",
                "paper",
                &Bfs::from_source(src),
                &graph,
                jobs,
                fault,
                timing_reps,
            )?);
            rows.push(run_pair(
                "cc",
                "paper",
                &ConnectedComponents::new(),
                &graph,
                jobs,
                fault,
                timing_reps,
            )?);
        }
    }
    // The deep-bank design point (2048-row banks): the regime where the
    // linear scan's O(rows) cost dominates the shared per-search work.
    for &jobs in jobs_list {
        for fault in [false, true] {
            rows.push(run_pair(
                "pagerank",
                "deep",
                &pagerank,
                &graph,
                jobs,
                fault,
                timing_reps,
            )?);
        }
    }

    let mut t = Table::new(&[
        "algorithm",
        "bank",
        "jobs",
        "fault",
        "linear (s)",
        "indexed (s)",
        "auto (s)",
        "speedup",
        "auto/best",
        "report",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.algorithm.into(),
            r.bank.into(),
            r.jobs.to_string(),
            if r.fault { "on" } else { "off" }.into(),
            format!("{:.3}", r.linear_s),
            format!("{:.3}", r.indexed_s),
            format!("{:.3}", r.auto_s),
            format!("{:.2}x", r.speedup()),
            format!("{:.2}x", r.auto_vs_best()),
            "identical".into(),
        ]);
    }
    println!("{t}");

    if !smoke {
        let path = if baseline_path.is_some() {
            "results/BENCH_07.json"
        } else {
            "results/BENCH_05.json"
        };
        std::fs::write(
            path,
            json_artifact(&rows, graph.num_edges() as u64, pr_iters),
        )?;
        println!("Wrote {path}");
        let pick = |bank: &str| {
            rows.iter()
                .find(|r| r.algorithm == "pagerank" && r.bank == bank && r.jobs == 1 && !r.fault)
                .expect("pagerank jobs=1 fault=off row")
        };
        let paper = pick("paper");
        let deep = pick("deep");
        println!(
            "PageRank, paper banks (128-row): Indexed {:.2}x faster than Linear \
             (Amdahl-limited: the 128-entry scan costs about as much as the \
             shared per-search accounting).",
            paper.speedup()
        );
        let auto_failures = gate_auto_floor(&rows, auto_floor);
        if !auto_failures.is_empty() {
            return Err(format!(
                "auto-gate: {} row(s) below {auto_floor:.2}x of the better fixed mode:\n  {}",
                auto_failures.len(),
                auto_failures.join("\n  "),
            )
            .into());
        }
        println!("auto-gate: every Auto row within {auto_floor:.2}x of the better fixed mode.");
        if let Some(bpath) = &baseline_path {
            let text = std::fs::read_to_string(bpath)
                .map_err(|e| format!("cannot read baseline {bpath}: {e}"))?;
            let baseline = parse_baseline(&text);
            if baseline.is_empty() {
                return Err(format!("baseline {bpath} holds no parseable runs").into());
            }
            let failures = gate_against_baseline(&rows, &baseline, tolerance);
            if !failures.is_empty() {
                return Err(format!(
                    "perf-gate: {} row(s) regressed vs {bpath}:\n  {}",
                    failures.len(),
                    failures.join("\n  "),
                )
                .into());
            }
            println!(
                "perf-gate: all matched rows within {:.0}% of {bpath}.",
                100.0 * tolerance
            );
        } else if deep.speedup() < 3.0 {
            return Err(format!(
                "deep-bank PageRank Indexed speedup {:.2}x below the 3x gate \
                 (linear {:.3}s, indexed {:.3}s)",
                deep.speedup(),
                deep.linear_s,
                deep.indexed_s,
            )
            .into());
        }
        if baseline_path.is_none() {
            println!(
                "PageRank matrix workload, deep banks (2048-row): Indexed {:.2}x \
                 faster than Linear (gate: >= 3x).",
                deep.speedup()
            );
        }
    }
    println!("All search-mode runs matched bit-for-bit.");
    Ok(())
}
