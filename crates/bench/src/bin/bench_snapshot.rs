//! Search-mode identity snapshot: runs the standard workload matrix —
//! PageRank, SSSP, BFS, and connected components, each at jobs ∈ {1, 4}
//! with fault injection off and on — once with [`SearchMode::Linear`] and
//! once with [`SearchMode::Indexed`], asserts the merged `RunReport` and
//! the algorithm output are **bit-identical** across the two modes for
//! every combination, and writes the host wall-clock comparison to
//! `results/BENCH_05.json`.
//!
//! The matrix covers both bank geometries: the Table I configuration
//! (128-row banks) and the [`GaasXConfig::deep_bank`] design point
//! (2048-row banks, same resident edges). At 128 rows the linear host
//! scan is nearly as cheap as the shared per-search accounting, so the
//! indexed win is modest; at 1024 rows the O(rows) scan dominates and
//! the O(hits) path pulls far ahead. The full run exits nonzero on any
//! report divergence, and when Indexed mode fails to deliver at least a
//! 3× wall-clock speedup on the deep-bank PageRank matrix workload.
//!
//! `--smoke` runs a reduced matrix for CI: identity checks only, a small
//! graph, no JSON artifact, no speedup gate. `GAASX_CAP_EDGES` caps the
//! full-matrix edge count and `GAASX_PR_ITERS` the PageRank iterations.
//!
//! `--baseline <path>` switches the full run into perf-regression mode:
//! the artifact is written to `results/BENCH_06.json` instead and every
//! matrix row's Indexed-over-Linear speedup is gated against the matching
//! `(algorithm, bank, jobs, fault)` row of the baseline artifact — the
//! run fails when any row drops below `baseline * (1 - tolerance)`
//! (`--tolerance`, default 0.5; speedup *ratios* are far more stable than
//! raw wall clocks, but CI machines still jitter). The absolute 3× gate
//! on deep-bank PageRank applies only without `--baseline`.

#![allow(clippy::unwrap_used)]
use std::time::Instant;

use gaasx_core::algorithms::{Bfs, ConnectedComponents, PageRank, Sssp};
use gaasx_core::{GaasX, GaasXConfig, RecoveryPolicy, RunOutcome, SearchMode, ShardableAlgorithm};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_sim::table::{count, Table};
use gaasx_xbar::FaultModel;

/// One cell of the workload matrix, measured in both modes.
struct Row {
    algorithm: &'static str,
    /// Bank geometry: "paper" (128-row) or "deep" (2048-row).
    bank: &'static str,
    jobs: usize,
    fault: bool,
    linear_s: f64,
    indexed_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.linear_s / self.indexed_s.max(f64::MIN_POSITIVE)
    }
}

fn config(bank: &str, mode: SearchMode, fault: bool) -> GaasXConfig {
    let mut c = if bank == "deep" {
        GaasXConfig::deep_bank()
    } else {
        GaasXConfig::paper()
    };
    c.search_mode = mode;
    if fault {
        // Mild stuck-cell + transient-write model with the standard
        // write-verify/spare-row recovery: runs complete, the fault RNG
        // draws on every programming op, and the memo layer must disable
        // itself — the strictest identity regime.
        c.fault = FaultModel {
            seed: 0xBE05,
            cam_stuck_ber: 1e-4,
            mac_stuck_ber: 1e-4,
            write_fail_rate: 1e-3,
            ..FaultModel::none()
        };
        c.recovery = RecoveryPolicy::standard();
    }
    c
}

fn run_once<A: ShardableAlgorithm>(
    algorithm: &A,
    input: &A::Input,
    jobs: usize,
    cfg: GaasXConfig,
) -> Result<(RunOutcome<A::Output>, f64), String> {
    let mut accel = GaasX::new(cfg);
    let start = Instant::now();
    let outcome = if jobs > 1 {
        accel.run_sharded(algorithm, input, jobs)
    } else {
        accel.run(algorithm, input)
    }
    .map_err(|e| e.to_string())?;
    Ok((outcome, start.elapsed().as_secs_f64()))
}

/// Runs one matrix cell in both modes and checks bit-identity.
fn run_pair<A>(
    name: &'static str,
    bank: &'static str,
    algorithm: &A,
    input: &A::Input,
    jobs: usize,
    fault: bool,
) -> Result<Row, String>
where
    A: ShardableAlgorithm,
    A::Output: PartialEq,
{
    let (lin, linear_s) = run_once(
        algorithm,
        input,
        jobs,
        config(bank, SearchMode::Linear, fault),
    )?;
    let (idx, indexed_s) = run_once(
        algorithm,
        input,
        jobs,
        config(bank, SearchMode::Indexed, fault),
    )?;
    if lin.report != idx.report {
        return Err(format!(
            "{name}: bank={bank} jobs={jobs} fault={fault}: Indexed report diverged from Linear \
             (ops {:?} vs {:?}, elapsed {} vs {} ns, energy {} vs {} nJ)",
            idx.report.ops,
            lin.report.ops,
            idx.report.elapsed_ns,
            lin.report.elapsed_ns,
            idx.report.energy.total_nj(),
            lin.report.energy.total_nj(),
        ));
    }
    if lin.result != idx.result {
        return Err(format!(
            "{name}: bank={bank} jobs={jobs} fault={fault}: Indexed output diverged from Linear"
        ));
    }
    Ok(Row {
        algorithm: name,
        bank,
        jobs,
        fault,
        linear_s,
        indexed_s,
    })
}

/// One `(algorithm, bank, jobs, fault)` row recovered from a baseline
/// artifact, with its recorded speedup.
struct BaselineRow {
    algorithm: String,
    bank: String,
    jobs: usize,
    fault: bool,
    speedup: f64,
}

/// Extracts the raw text of `"key": <value>` from one JSON line, tolerating
/// optional whitespace after the colon; string values lose their quotes.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Parses the `runs` rows out of a `BENCH_0x.json` artifact. Lines that
/// don't carry an `algorithm` field (header, brackets) are skipped.
fn parse_baseline(text: &str) -> Vec<BaselineRow> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineRow {
                algorithm: field(line, "algorithm")?.to_string(),
                bank: field(line, "bank")?.to_string(),
                jobs: field(line, "jobs")?.parse().ok()?,
                fault: field(line, "fault")?.parse().ok()?,
                speedup: field(line, "speedup")?.parse().ok()?,
            })
        })
        .collect()
}

/// Gates every current row against the matching baseline row. Returns the
/// failures; rows absent from the baseline are reported but don't fail.
fn gate_against_baseline(rows: &[Row], baseline: &[BaselineRow], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for r in rows {
        let key = (r.algorithm, r.bank, r.jobs, r.fault);
        let Some(b) = baseline
            .iter()
            .find(|b| (b.algorithm.as_str(), b.bank.as_str(), b.jobs, b.fault) == key)
        else {
            println!(
                "perf-gate: no baseline row for {} bank={} jobs={} fault={} — skipping",
                r.algorithm, r.bank, r.jobs, r.fault
            );
            continue;
        };
        let floor = b.speedup * (1.0 - tolerance);
        if r.speedup() < floor {
            failures.push(format!(
                "{} bank={} jobs={} fault={}: speedup {:.3}x fell below {:.3}x \
                 (baseline {:.3}x, tolerance {:.0}%)",
                r.algorithm,
                r.bank,
                r.jobs,
                r.fault,
                r.speedup(),
                floor,
                b.speedup,
                100.0 * tolerance,
            ));
        }
    }
    failures
}

fn json_artifact(rows: &[Row], edges: u64, pr_iters: u32) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"search_modes\",\n");
    s.push_str(&format!("  \"edges\": {edges},\n"));
    s.push_str(&format!("  \"pr_iterations\": {pr_iters},\n"));
    s.push_str("  \"identity\": \"every row bit-identical (RunReport + output) across modes\",\n");
    s.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"bank\": \"{}\", \"jobs\": {}, \"fault\": {}, \
             \"linear_wall_s\": {:.6}, \"indexed_wall_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.algorithm,
            r.bank,
            r.jobs,
            r.fault,
            r.linear_s,
            r.indexed_s,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut smoke = false;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--baseline" => {
                baseline_path = Some(args.next().ok_or("--baseline requires a path argument")?);
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or("--tolerance requires a fraction in [0, 1)")?;
            }
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }
    let (cap, pr_iters, jobs_list): (usize, u32, &[usize]) = if smoke {
        (4_000, 3, &[1, 2])
    } else {
        (
            gaasx_bench::cap_edges(),
            gaasx_bench::pr_iterations(),
            &[1, 4],
        )
    };
    let vertices = (cap / 16).clamp(64, 1 << 17).next_power_of_two();
    let graph = rmat(&RmatConfig::new(vertices as u32, cap).with_seed(29))?;
    let src = gaasx_bench::traversal_source(&graph);
    println!(
        "Search-mode snapshot — RMAT |V|={} |E|={}, PageRank x{pr_iters}, \
         jobs {jobs_list:?}, fault off/on{}\nEvery cell runs Linear and Indexed \
         and is checked bit-identical (full RunReport + output).\n",
        count(graph.num_vertices() as u64),
        count(graph.num_edges() as u64),
        if smoke { " (smoke)" } else { "" },
    );

    let pagerank = PageRank::fixed_iterations(pr_iters);
    let mut rows: Vec<Row> = Vec::new();
    for &jobs in jobs_list {
        for fault in [false, true] {
            rows.push(run_pair(
                "pagerank", "paper", &pagerank, &graph, jobs, fault,
            )?);
            rows.push(run_pair(
                "sssp",
                "paper",
                &Sssp::from_source(src),
                &graph,
                jobs,
                fault,
            )?);
            rows.push(run_pair(
                "bfs",
                "paper",
                &Bfs::from_source(src),
                &graph,
                jobs,
                fault,
            )?);
            rows.push(run_pair(
                "cc",
                "paper",
                &ConnectedComponents::new(),
                &graph,
                jobs,
                fault,
            )?);
        }
    }
    // The deep-bank design point (2048-row banks): the regime where the
    // linear scan's O(rows) cost dominates the shared per-search work.
    for &jobs in jobs_list {
        for fault in [false, true] {
            rows.push(run_pair(
                "pagerank", "deep", &pagerank, &graph, jobs, fault,
            )?);
        }
    }

    let mut t = Table::new(&[
        "algorithm",
        "bank",
        "jobs",
        "fault",
        "linear (s)",
        "indexed (s)",
        "speedup",
        "report",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.algorithm.into(),
            r.bank.into(),
            r.jobs.to_string(),
            if r.fault { "on" } else { "off" }.into(),
            format!("{:.3}", r.linear_s),
            format!("{:.3}", r.indexed_s),
            format!("{:.2}x", r.speedup()),
            "identical".into(),
        ]);
    }
    println!("{t}");

    if !smoke {
        let path = if baseline_path.is_some() {
            "results/BENCH_06.json"
        } else {
            "results/BENCH_05.json"
        };
        std::fs::write(
            path,
            json_artifact(&rows, graph.num_edges() as u64, pr_iters),
        )?;
        println!("Wrote {path}");
        let pick = |bank: &str| {
            rows.iter()
                .find(|r| r.algorithm == "pagerank" && r.bank == bank && r.jobs == 1 && !r.fault)
                .expect("pagerank jobs=1 fault=off row")
        };
        let paper = pick("paper");
        let deep = pick("deep");
        println!(
            "PageRank, paper banks (128-row): Indexed {:.2}x faster than Linear \
             (Amdahl-limited: the 128-entry scan costs about as much as the \
             shared per-search accounting).",
            paper.speedup()
        );
        if let Some(bpath) = &baseline_path {
            let text = std::fs::read_to_string(bpath)
                .map_err(|e| format!("cannot read baseline {bpath}: {e}"))?;
            let baseline = parse_baseline(&text);
            if baseline.is_empty() {
                return Err(format!("baseline {bpath} holds no parseable runs").into());
            }
            let failures = gate_against_baseline(&rows, &baseline, tolerance);
            if !failures.is_empty() {
                return Err(format!(
                    "perf-gate: {} row(s) regressed vs {bpath}:\n  {}",
                    failures.len(),
                    failures.join("\n  "),
                )
                .into());
            }
            println!(
                "perf-gate: all {} rows within {:.0}% of {bpath}.",
                rows.len(),
                100.0 * tolerance
            );
        } else if deep.speedup() < 3.0 {
            return Err(format!(
                "deep-bank PageRank Indexed speedup {:.2}x below the 3x gate \
                 (linear {:.3}s, indexed {:.3}s)",
                deep.speedup(),
                deep.linear_s,
                deep.indexed_s,
            )
            .into());
        }
        if baseline_path.is_none() {
            println!(
                "PageRank matrix workload, deep banks (2048-row): Indexed {:.2}x \
                 faster than Linear (gate: >= 3x).",
                deep.speedup()
            );
        }
    }
    println!("All search-mode runs matched bit-for-bit.");
    Ok(())
}
