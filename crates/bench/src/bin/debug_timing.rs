//! Internal scratch binary for calibrating the workload models.

#![allow(clippy::unwrap_used)]
use gaasx_baselines::{GraphR, GraphRConfig};
use gaasx_bench::*;
use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::datasets::PaperDataset;
use gaasx_graph::partition::GridPartition;

fn main() {
    let cap = cap_edges();
    for ds in [
        PaperDataset::WikiVote,
        PaperDataset::LiveJournal,
        PaperDataset::Orkut,
    ] {
        let g = load_graph(ds, cap).unwrap();
        let units = scaled_units(ds, cap);
        let grid = GridPartition::new(&g, 16).unwrap();
        let nnz = g.num_edges() as f64 / grid.num_nonempty_shards() as f64;
        let mut gx = GaasX::new(GaasXConfig {
            num_banks: units,
            ..GaasXConfig::paper()
        });
        let r1 = gx
            .run_labeled(&PageRank::fixed_iterations(3), &g, ds.abbrev())
            .unwrap()
            .report;
        let mut gr = GraphR::new(GraphRConfig {
            num_pe: units,
            ..GraphRConfig::paper()
        });
        let r2 = gr.pagerank(&g, 0.85, 3).unwrap().report;
        let one_row = r1.rows_per_mac.fraction_at_most(1);
        let over6 = 1.0 - r1.rows_per_mac.fraction_at_most(6);
        println!(
            "{}: V={} E={} nnz/tile={:.2} writes_ratio={:.0} | PR speedup={:.2} energy={:.2} | fig13 1-row={:.0}% >6={:.1}%",
            ds.abbrev(), g.num_vertices(), g.num_edges(), nnz, 256.0/nnz,
            r1.speedup_over(&r2), r1.energy_savings_over(&r2),
            100.0*one_row, 100.0*over6,
        );
    }
}
