//! Regenerates Table III: baseline system configurations.

fn main() {
    println!("{}", gaasx_bench::experiments::table3());
}
