//! Regenerates Table III: baseline system configurations.

#![allow(clippy::unwrap_used)]
fn main() {
    println!("{}", gaasx_bench::experiments::table3());
}
