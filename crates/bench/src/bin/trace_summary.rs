//! Replays a JSONL event trace (from `--trace` or any `JsonlSink`) into
//! per-phase and per-bank utilization tables.
//!
//! Usage: `trace_summary <trace.jsonl>`

#![allow(clippy::unwrap_used)]
use std::fs;
use std::process::ExitCode;

use gaasx_bench::trace::TraceSummary;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_summary <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace_summary: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let summary = TraceSummary::parse(&text);
    if summary.spans.is_empty() && summary.skipped > 0 {
        eprintln!("trace_summary: no recognizable events in {path}");
        return ExitCode::FAILURE;
    }
    print!("Trace: {path}\n\n{}", summary.render());
    ExitCode::SUCCESS
}
