//! Multi-tenant serving soak: drives a [`gaasx_serve::Server`] through
//! combined overload, deadline misses, quota exhaustion, capacity and
//! wear eviction, transient and unrecoverable device faults, a deliberate
//! worker panic, and batched queries — then checks the degradation
//! contract end to end:
//!
//! 1. **no panic escapes** — the injected worker panic is caught, the
//!    worker is replaced, and later queries on the same graph succeed;
//! 2. **every non-OK outcome is typed** — rejections bill nothing and
//!    carry retry/quota context; deadline misses and exhausted retries
//!    carry the partial `RunReport` of the work actually performed;
//! 3. **residency and batching are functionally invisible** — resident
//!    and batched results are bit-identical to fresh one-shot
//!    `run_labeled_sharded` runs, and a batch bills strictly less than
//!    the serial sum;
//! 4. **billing conserves bit-exactly** — per-tenant sums recomputed
//!    from the responses equal the ledger, and the tenant sums equal the
//!    grand total, `f64::to_bits` for `f64::to_bits`.
//!
//! Exits nonzero on any violation. `--smoke` shrinks the traffic for the
//! CI gate; everything is seeded, so the soak replays bit-for-bit.

#![allow(clippy::unwrap_used)]
use gaasx_core::algorithms::Bfs;
use gaasx_core::{GaasX, GaasXConfig, RecoveryPolicy};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::{CooGraph, VertexId};
use gaasx_serve::{QueryKind, QueryRequest, QueryResponse, ServeError, Server, ServerConfig};
use gaasx_sim::table::{count, Table};
use gaasx_sim::Nanos;
use gaasx_xbar::FaultModel;

struct Args {
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args { smoke })
}

fn graph(edges: usize, seed: u64) -> CooGraph {
    rmat(&RmatConfig::new(1 << 6, edges).with_seed(seed)).unwrap()
}

fn request(tenant: &str, graph: &str, kind: QueryKind, arrival: f64) -> QueryRequest {
    QueryRequest {
        tenant: tenant.into(),
        graph: graph.into(),
        kind,
        arrival_ns: Nanos::from_ns(arrival),
        deadline_ns: None,
    }
}

/// The worker-boundary `catch_unwind` swallows the injected panic, but
/// the default hook would still spray a backtrace into the CI log.
/// Silence exactly that payload; anything else keeps the loud default.
fn install_quiet_panic_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("deliberate debug panic"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("deliberate debug panic"));
        if !expected {
            default(info);
        }
    }));
}

/// Invariant 2 + 4 for one finished server: every non-OK outcome is a
/// typed error (with a partial report where the contract promises one),
/// rejections bill nothing, and recomputing per-tenant bills from the
/// responses reproduces the ledger bit-exactly.
fn check_contract(label: &str, server: &Server, responses: &[QueryResponse]) -> Result<(), String> {
    for r in responses {
        match &r.outcome {
            Ok(_) => {}
            Err(e @ (ServeError::Overloaded { .. } | ServeError::QuotaExceeded { .. })) => {
                if r.billed_ns != Nanos::ZERO {
                    return Err(format!("{label}: rejection billed time: {e}"));
                }
            }
            Err(ServeError::UnknownGraph { .. }) => {
                if r.billed_ns != Nanos::ZERO {
                    return Err(format!("{label}: unknown-graph rejection billed time"));
                }
            }
            Err(e @ ServeError::DeadlineExceeded { .. })
            | Err(e @ ServeError::DeviceFault { .. }) => {
                let report = e
                    .partial_report()
                    .ok_or_else(|| format!("{label}: `{e}` lost its partial report"))?;
                // Retries bill every attempt, so the bill is at least the
                // final attempt's partial work.
                if r.billed_ns < report.elapsed_ns {
                    return Err(format!("{label}: billed less than the partial report"));
                }
            }
            Err(ServeError::Internal { .. }) => {}
            Err(other) => return Err(format!("{label}: unexpected outcome `{other}`")),
        }
    }
    // Bit-exact conservation: fold the responses the way the ledger does
    // (record order per tenant, then lexicographic tenant order).
    let mut per_tenant: std::collections::BTreeMap<&str, Nanos> = std::collections::BTreeMap::new();
    for r in responses {
        *per_tenant.entry(r.tenant.as_str()).or_insert(Nanos::ZERO) += r.billed_ns;
    }
    let mut total = Nanos::ZERO;
    for (tenant, billed) in &per_tenant {
        let ledger = server.ledger().billed_ns(tenant);
        if ledger.ns().to_bits() != billed.ns().to_bits() {
            return Err(format!(
                "{label}: tenant `{tenant}` ledger {} != response sum {}",
                ledger.ns(),
                billed.ns()
            ));
        }
        total += *billed;
    }
    if server.ledger().total_billed_ns().ns().to_bits() != total.ns().to_bits() {
        return Err(format!("{label}: tenant bills do not sum to the total"));
    }
    Ok(())
}

/// Scenario 1 — mixed multi-tenant traffic on a clean device: two graphs
/// that never fit together (capacity LRU churn), one service lane with a
/// two-deep queue (overload bursts), tight deadlines, a starved quota,
/// an unknown graph, a deliberate worker panic, and a batched query.
fn mixed_scenario(rounds: usize, edges: usize) -> Result<(Server, Vec<QueryResponse>), String> {
    let g0 = graph(edges, 21);
    let g1 = graph(edges + 50, 22);
    let mut config = ServerConfig::new(GaasXConfig::small());
    config.lanes = 1;
    config.queue_capacity = 2;
    config.capacity_edges = g0.num_edges().max(g1.num_edges()) + 10;
    let mut server = Server::new(config);
    server
        .register_graph("orders", g0)
        .map_err(|e| e.to_string())?;
    server
        .register_graph("social", g1)
        .map_err(|e| e.to_string())?;
    server.set_quota("delta", Nanos::from_ns(1.0));

    // Rounds are spaced far apart (1 s of modeled time) so each starts
    // with an idle lane; the intra-round burst shares one arrival
    // instant, so with one lane and a two-deep queue the tail sheds.
    for i in 0..rounds {
        let t = i as f64 * 1e9;
        // Alternating graphs forces a capacity eviction per round.
        server.submit(request(
            "acme",
            "orders",
            QueryKind::Bfs {
                source: (i % 16) as u32,
            },
            t,
        ));
        server.submit(request(
            "bolt",
            "social",
            QueryKind::Sssp {
                source: (i % 8) as u32,
            },
            t + 1.0,
        ));
        // Same-arrival burst: one lane, queue of two — the rest shed.
        server.submit(request(
            "carbon",
            "orders",
            QueryKind::Bfs { source: 2 },
            t + 1.0,
        ));
        server.submit(request(
            "carbon",
            "orders",
            QueryKind::Bfs { source: 3 },
            t + 1.0,
        ));
        // Mid-round, after the burst drains: delta's first query bills
        // real time against a 1 ns quota, locking every later one out.
        server.submit(request(
            "delta",
            "orders",
            QueryKind::Bfs { source: 0 },
            t + 5e8,
        ));
        if i == 1 {
            let mut miss = request("acme", "social", QueryKind::Sssp { source: 0 }, t + 6e8);
            miss.deadline_ns = Some(Nanos::from_ns(1.0));
            server.submit(miss);
            server.submit(request(
                "bolt",
                "missing",
                QueryKind::Bfs { source: 0 },
                t + 6e8,
            ));
        }
        if i == 2 {
            server.submit(request("acme", "orders", QueryKind::DebugPanic, t + 7e8));
        }
        if i == 3 {
            server.submit(request(
                "carbon",
                "orders",
                QueryKind::BatchBfs {
                    sources: vec![0, 1, 2],
                },
                t + 7e8,
            ));
        }
    }
    let responses = server.run();
    Ok((server, responses))
}

/// Invariant 3 on the mixed scenario's responses: a resident query and
/// every lane of the batched query match fresh one-shots bit-for-bit,
/// and the batch bills strictly less than the serial sum.
fn check_identity(responses: &[QueryResponse], edges: usize) -> Result<(), String> {
    // Mirrors `mixed_scenario`'s registration of `orders`.
    let g0 = graph(edges, 21);
    // Resident identity: first completed single-source BFS on `orders`.
    let resident = responses
        .iter()
        .find_map(|r| match r.outcome.as_ref() {
            Ok(out) if r.graph == "orders" && out.values.len() == 1 => Some(out),
            _ => None,
        })
        .ok_or("no completed query on `orders`")?;
    // Sources cycle per round; recover it from the BFS result itself
    // (the source is the unique vertex at distance zero).
    let source = resident.values[0]
        .iter()
        .position(|&d| d == 0.0)
        .ok_or("BFS result has no zero-distance source")? as u32;
    let one_shot = GaasX::new(GaasXConfig::small())
        .run_labeled_sharded(&Bfs::from_source(VertexId::new(source)), &g0, "orders", 1)
        .map_err(|e| e.to_string())?;
    if resident.values[0] != one_shot.result || resident.report.ops != one_shot.report.ops {
        return Err("resident query diverged from the one-shot run".into());
    }

    // Batch identity + strict cost win.
    let batch = responses
        .iter()
        .find_map(|r| match (&r.outcome, r.graph.as_str()) {
            (Ok(out), "orders") if out.values.len() == 3 => Some((out, r.billed_ns)),
            _ => None,
        })
        .ok_or("no completed batch query")?;
    let mut serial_sum = Nanos::ZERO;
    for (q, &source) in [0u32, 1, 2].iter().enumerate() {
        let one_shot = GaasX::new(GaasXConfig::small())
            .run_labeled_sharded(&Bfs::from_source(VertexId::new(source)), &g0, "orders", 1)
            .map_err(|e| e.to_string())?;
        if batch.0.values[q] != one_shot.result {
            return Err(format!("batch lane {q} diverged from its one-shot"));
        }
        if batch.0.iterations[q] != one_shot.report.iterations {
            return Err(format!("batch lane {q} iteration count diverged"));
        }
        serial_sum += one_shot.report.elapsed_ns;
    }
    if batch.1 >= serial_sum {
        return Err(format!(
            "batch billed {} ns >= serial sum {} ns",
            batch.1.ns(),
            serial_sum.ns()
        ));
    }
    println!(
        "identity: resident == one-shot (bit-exact); batch of 3 billed {} vs serial {} ns \
         ({:.1}% saved)",
        count(batch.1.ns() as u64),
        count(serial_sum.ns() as u64),
        100.0 * (1.0 - batch.1.ns() / serial_sum.ns()),
    );
    Ok(())
}

/// Scenario 2 — transient write faults under detect-only recovery:
/// seeded so the first attempt faults and a bounded retry succeeds.
fn flaky_scenario(edges: usize) -> Result<(Server, Vec<QueryResponse>), String> {
    let accel = GaasXConfig {
        fault: FaultModel {
            seed: 7,
            write_fail_rate: 5e-4,
            ..FaultModel::none()
        },
        recovery: RecoveryPolicy::detect_only(),
        ..GaasXConfig::small()
    };
    let g = graph(edges, 4);
    let clean = GaasX::new(GaasXConfig::small())
        .run_labeled_sharded(&Bfs::from_source(VertexId::new(0)), &g, "flaky", 1)
        .map_err(|e| e.to_string())?;
    let mut config = ServerConfig::new(accel);
    config.max_retries = 3;
    let mut server = Server::new(config);
    server
        .register_graph("flaky", g)
        .map_err(|e| e.to_string())?;
    server.submit(request("acme", "flaky", QueryKind::Bfs { source: 0 }, 0.0));
    let responses = server.run();
    let out = responses[0]
        .outcome
        .as_ref()
        .map_err(|e| format!("flaky query failed outright: {e}"))?;
    if out.values[0] != clean.result {
        return Err("retried result diverged from the fault-free run".into());
    }
    if server.stats().retries == 0 {
        return Err("flaky scenario drew no retries — seed drifted".into());
    }
    Ok((server, responses))
}

/// Scenario 3 — unrecoverable write-fault rate: retries exhaust and the
/// query surfaces a typed `DeviceFault` carrying the partial report.
fn exhausted_scenario(edges: usize) -> Result<(Server, Vec<QueryResponse>), String> {
    let accel = GaasXConfig {
        fault: FaultModel {
            seed: 5,
            write_fail_rate: 2e-3,
            ..FaultModel::none()
        },
        recovery: RecoveryPolicy::detect_only(),
        ..GaasXConfig::small()
    };
    let mut config = ServerConfig::new(accel);
    config.max_retries = 3;
    let mut server = Server::new(config);
    server
        .register_graph("doomed", graph(edges, 4))
        .map_err(|e| e.to_string())?;
    server.submit(request("bolt", "doomed", QueryKind::Bfs { source: 0 }, 0.0));
    let responses = server.run();
    match &responses[0].outcome {
        Err(ServeError::DeviceFault {
            attempts,
            report: Some(_),
            ..
        }) if *attempts == 4 => {}
        other => return Err(format!("want DeviceFault after 4 attempts, got {other:?}")),
    }
    Ok((server, responses))
}

/// Scenario 4 — endurance-tracked banks with a wear threshold of one
/// write: every query trips a wear eviction and the next reprograms,
/// with results unchanged.
fn worn_scenario(edges: usize) -> Result<(Server, Vec<QueryResponse>), String> {
    let accel = GaasXConfig {
        fault: FaultModel {
            seed: 3,
            endurance: 1_000_000_000,
            ..FaultModel::none()
        },
        recovery: RecoveryPolicy::standard(),
        ..GaasXConfig::small()
    };
    let mut config = ServerConfig::new(accel);
    config.wear_threshold_writes = 1;
    let mut server = Server::new(config);
    server
        .register_graph("worn", graph(edges, 6))
        .map_err(|e| e.to_string())?;
    for i in 0..3 {
        server.submit(request(
            "carbon",
            "worn",
            QueryKind::Bfs { source: 0 },
            i as f64,
        ));
    }
    let responses = server.run();
    let first = responses[0].outcome.as_ref().map_err(|e| e.to_string())?;
    for r in &responses[1..] {
        let out = r.outcome.as_ref().map_err(|e| e.to_string())?;
        if out.values != first.values {
            return Err("wear-evicted reprogram changed the result".into());
        }
    }
    if server.stats().wear_evictions == 0 {
        return Err("wear threshold of 1 write tripped no evictions".into());
    }
    Ok((server, responses))
}

fn utilization_table(server: &Server) -> Table {
    let mut table = Table::new(&[
        "tenant",
        "admitted",
        "completed",
        "rejected",
        "failed",
        "billed ns",
        "share",
    ]);
    for (tenant, usage) in server.ledger().iter() {
        table.row_owned(vec![
            tenant.into(),
            count(usage.admitted),
            count(usage.completed),
            count(usage.rejected),
            count(usage.failed),
            count(usage.billed_ns.ns() as u64),
            format!("{:.1}%", 100.0 * server.ledger().billed_share(tenant)),
        ]);
    }
    table
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    install_quiet_panic_hook();
    let (rounds, edges) = if args.smoke { (4, 200) } else { (12, 500) };
    println!(
        "Serving soak — {rounds} rounds x 4 tenants over RMAT graphs (|E|~{edges}), \
         overload + deadlines + quota + eviction + faults + panic{}\n",
        if args.smoke { " (smoke subset)" } else { "" },
    );

    let (mixed, mixed_responses) = mixed_scenario(rounds, edges)?;
    check_contract("mixed", &mixed, &mixed_responses)?;
    check_identity(&mixed_responses, edges)?;
    let stats = mixed.stats();
    if stats.panics_caught != 1 || stats.worker_replacements != 1 {
        return Err(format!(
            "panic isolation: caught {} replaced {} (want 1/1)",
            stats.panics_caught, stats.worker_replacements
        )
        .into());
    }
    if stats.rejected_overload == 0 || stats.rejected_quota == 0 || stats.capacity_evictions == 0 {
        return Err(format!(
            "mixed scenario failed to exercise degradation: overload {} quota {} evictions {}",
            stats.rejected_overload, stats.rejected_quota, stats.capacity_evictions
        )
        .into());
    }
    if stats.failed_deadline == 0 || stats.rejected_unknown == 0 {
        return Err("mixed scenario missed its deadline/unknown-graph probes".into());
    }
    println!(
        "mixed: {} submitted, {} completed, {} shed (overload), {} quota, {} deadline-missed, \
         {} capacity evictions, 1 worker panic caught",
        count(mixed_responses.len() as u64),
        count(stats.completed),
        count(stats.rejected_overload),
        count(stats.rejected_quota),
        count(stats.failed_deadline),
        count(stats.capacity_evictions),
    );
    println!(
        "\nper-tenant utilization (mixed scenario):\n{}",
        utilization_table(&mixed)
    );

    let (flaky, flaky_responses) = flaky_scenario(400)?;
    check_contract("flaky", &flaky, &flaky_responses)?;
    println!(
        "flaky: transient write faults recovered after {} retry(ies), result bit-identical",
        count(flaky.stats().retries),
    );

    let (exhausted, exhausted_responses) = exhausted_scenario(400)?;
    check_contract("exhausted", &exhausted, &exhausted_responses)?;
    println!("exhausted: unrecoverable fault surfaced typed DeviceFault with partial report");

    let (worn, worn_responses) = worn_scenario(400)?;
    check_contract("worn", &worn, &worn_responses)?;
    println!(
        "worn: {} wear evictions, {} reprograms, results unchanged",
        count(worn.stats().wear_evictions),
        count(worn.stats().reprograms),
    );

    println!(
        "\nAll scenarios honored the degradation contract: no panic escaped, every \
         rejection/timeout/fault was typed, residency and batching were bit-invisible, \
         and per-tenant bills conserve exactly."
    );
    Ok(())
}
