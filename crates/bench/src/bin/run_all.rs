//! Runs every experiment and writes the rendered tables to `results/`.

use std::fs;
use std::time::Instant;

use gaasx_bench::experiments as exp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cap = gaasx_bench::cap_edges();
    let iters = gaasx_bench::pr_iterations();
    let start = Instant::now();
    fs::create_dir_all("results")?;

    let mut sections: Vec<(&str, String)> = vec![
        ("table1", exp::table1()),
        ("table2", exp::table2(cap)?),
        ("table3", exp::table3()),
        ("fig5", exp::fig5(cap)?),
    ];

    eprintln!("[run_all] simulating GaaS-X + GraphR matrix (cap {cap} edges)...");
    let matrix = exp::run_matrix(cap, iters)?;
    sections.push(("fig11", exp::fig11(&matrix)));
    sections.push(("fig12", exp::fig12(&matrix)));
    sections.push(("fig13", exp::fig13(&matrix)));
    sections.push(("fig14", exp::fig14(&matrix)));

    eprintln!("[run_all] running software baselines...");
    let sw = exp::run_software(&matrix, cap, iters)?;
    sections.push(("fig15", exp::fig15(&sw)));
    sections.push(("fig16", exp::fig16(&sw)));
    sections.push(("gapbs", exp::gapbs_comparison(&sw)));

    eprintln!("[run_all] collaborative filtering...");
    sections.push(("fig17", exp::fig17((cap / 6).max(2_000), 32, 3)?));

    let mut combined = String::new();
    for (name, body) in &sections {
        fs::write(format!("results/{name}.md"), body)?;
        combined.push_str(body);
        combined.push_str("\n\n");
        println!("{body}\n");
    }
    fs::write("results/all.md", &combined)?;
    eprintln!(
        "[run_all] done in {:.1}s; wrote results/*.md",
        start.elapsed().as_secs_f64()
    );
    Ok(())
}
