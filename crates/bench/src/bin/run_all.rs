//! Runs every experiment and writes the rendered tables to `results/`.
//!
//! `--trace <path>` additionally streams the trace-demo run's JSONL
//! events to `<path>` (replay with the `trace_summary` binary).
//! `--timeline-out <path>` writes the trace-demo run's bank-occupancy
//! timeline as Chrome trace-event JSON (load in Perfetto).
//! `--jobs <N>` fans the GaaS-X shard streams of the main matrix out over
//! `N` worker threads (default `GAASX_JOBS` or 1); reported totals are
//! bit-identical to the serial run.
//! `--search-mode linear|indexed|auto` picks the GaaS-X host hit-vector
//! algorithm (default auto); like `--jobs`, it only changes host
//! wall-clock.

#![allow(clippy::unwrap_used)]
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use gaasx_bench::experiments as exp;
use gaasx_core::SearchMode;
use gaasx_sim::{EnergyBreakdown, OpSummary};

struct Cli {
    trace: Option<PathBuf>,
    timeline: Option<PathBuf>,
    jobs: usize,
    search_mode: SearchMode,
}

fn cli() -> Result<Cli, String> {
    let mut trace = None;
    let mut timeline = None;
    let mut jobs = gaasx_bench::jobs();
    let mut search_mode = SearchMode::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                trace = Some(PathBuf::from(
                    args.next().ok_or("--trace requires a path argument")?,
                ));
            }
            "--timeline-out" => {
                timeline = Some(PathBuf::from(
                    args.next()
                        .ok_or("--timeline-out requires a path argument")?,
                ));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&j| j >= 1)
                    .ok_or("--jobs requires a worker count >= 1")?;
            }
            "--search-mode" => {
                search_mode = args
                    .next()
                    .ok_or("--search-mode requires a value (linear | indexed | auto)")?
                    .parse()?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Cli {
        trace,
        timeline,
        jobs,
        search_mode,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cap = gaasx_bench::cap_edges();
    let iters = gaasx_bench::pr_iterations();
    let Cli {
        trace,
        timeline,
        jobs,
        search_mode,
    } = cli()?;
    let start = Instant::now();
    fs::create_dir_all("results")?;

    let mut sections: Vec<(&str, String)> = vec![
        ("table1", exp::table1()),
        ("table2", exp::table2(cap)?),
        ("table3", exp::table3()),
        ("fig5", exp::fig5(cap)?),
    ];

    eprintln!(
        "[run_all] simulating GaaS-X + GraphR matrix \
         (cap {cap} edges, {jobs} job(s), {search_mode} search)..."
    );
    let matrix = exp::run_matrix_configured(cap, iters, jobs, search_mode)?;
    sections.push(("fig11", exp::fig11(&matrix)));
    sections.push(("fig12", exp::fig12(&matrix)));
    sections.push(("fig13", exp::fig13(&matrix)));
    sections.push(("fig14", exp::fig14(&matrix)));
    sections.push(("phases", exp::phase_table(&matrix)));

    eprintln!("[run_all] trace demo...");
    sections.push((
        "trace_demo",
        exp::trace_demo(trace.as_deref(), timeline.as_deref())?,
    ));

    eprintln!("[run_all] running software baselines...");
    let sw = exp::run_software(&matrix, cap, iters)?;
    sections.push(("fig15", exp::fig15(&sw)));
    sections.push(("fig16", exp::fig16(&sw)));
    sections.push(("gapbs", exp::gapbs_comparison(&sw)));

    eprintln!("[run_all] collaborative filtering...");
    sections.push(("fig17", exp::fig17((cap / 6).max(2_000), 32, 3)?));

    let mut combined = String::new();
    for (name, body) in &sections {
        fs::write(format!("results/{name}.md"), body)?;
        combined.push_str(body);
        combined.push_str("\n\n");
        println!("{body}\n");
    }
    fs::write("results/all.md", &combined)?;
    let total_ops: OpSummary = matrix.iter().map(|e| e.gaasx.ops + e.graphr.ops).sum();
    let total_energy: EnergyBreakdown = matrix
        .iter()
        .map(|e| e.gaasx.energy + e.graphr.energy)
        .sum();
    eprintln!(
        "[run_all] simulated {} MAC ops / {} CAM searches / {:.1} mJ across the matrix",
        total_ops.mac_ops,
        total_ops.cam_searches,
        total_energy.total_mj()
    );
    eprintln!(
        "[run_all] done in {:.1}s; wrote results/*.md",
        start.elapsed().as_secs_f64()
    );
    Ok(())
}
