//! Exports a bank-occupancy timeline as Chrome trace-event JSON.
//!
//! Runs PageRank on one RMAT graph with a [`TimelineSink`] attached,
//! writes the recorded timeline to the output path (default
//! `results/trace.json`; load it in Perfetto at <https://ui.perfetto.dev>
//! or in `chrome://tracing`), and prints the per-bank utilization table
//! derived from the same intervals.
//!
//! `--deep` switches to the 2048-row deep-bank geometry, where load and
//! compute overlap far less evenly. `--check` additionally scans the
//! written JSON for structural well-formedness (balanced delimiters, a
//! `traceEvents` array, at least one complete event) and exits nonzero
//! if the scan fails — the CI smoke mode.

#![allow(clippy::unwrap_used)]
use std::path::PathBuf;

use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_sim::table::{count, Table};
use gaasx_sim::{chrome_trace_json, Timeline, TimelineSink, Tracer, CONTROLLER_BANK};

struct Cli {
    out: PathBuf,
    deep: bool,
    check: bool,
}

fn cli() -> Result<Cli, String> {
    let mut out = None;
    let mut deep = false;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deep" => deep = true,
            "--check" => check = true,
            other if !other.starts_with('-') => out = Some(PathBuf::from(other)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Cli {
        out: out.unwrap_or_else(|| PathBuf::from("results/trace.json")),
        deep,
        check,
    })
}

/// Structural sanity scan over the exported JSON: delimiters balance
/// outside string literals and the document is one object holding a
/// `traceEvents` array with at least one complete (`"ph":"X"`) event.
fn check_json(json: &str) -> Result<(), String> {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced delimiters (closed before open)".into());
        }
    }
    if in_string {
        return Err("unterminated string literal".into());
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err(format!(
            "unbalanced delimiters at end (objects {depth_obj:+}, arrays {depth_arr:+})"
        ));
    }
    if !json.contains("\"traceEvents\":[") {
        return Err("missing traceEvents array".into());
    }
    if !json.contains("\"ph\":\"X\"") {
        return Err("no complete (ph=X) events in trace".into());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Cli { out, deep, check } = cli()?;
    let edges = gaasx_bench::cap_edges().min(60_000);
    let vertices = (edges / 8).clamp(64, 1 << 16).next_power_of_two();
    let graph = rmat(&RmatConfig::new(vertices as u32, edges).with_seed(7))?;

    let config = if deep {
        GaasXConfig::deep_bank()
    } else {
        GaasXConfig::paper()
    };
    let sink = std::sync::Arc::new(TimelineSink::new());
    let mut accel = GaasX::new(config).with_tracer(Tracer::with_sink(sink.clone()));
    let report = accel
        .run(
            &PageRank::fixed_iterations(gaasx_bench::pr_iterations()),
            &graph,
        )?
        .report;

    let timeline = Timeline::from_intervals(report.elapsed_ns, &sink.take());
    let json = chrome_trace_json(&timeline);
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&out, &json)?;

    let util = report
        .utilization
        .as_ref()
        .expect("interval-observing sink attached, utilization must be present");
    println!(
        "Timeline export — PageRank on RMAT (|V|={}, |E|={}), {} banks, {} intervals, \
         makespan {:.0} ns.",
        count(graph.num_vertices() as u64),
        count(graph.num_edges() as u64),
        util.banks
            .iter()
            .filter(|b| b.bank != CONTROLLER_BANK)
            .count(),
        timeline.len(),
        util.makespan_ns,
    );
    // With hundreds of banks a full table is noise: show the busiest 16
    // plus the controller row and say how many were elided.
    const TABLE_CAP: usize = 16;
    let mut shown: Vec<_> = util
        .banks
        .iter()
        .filter(|b| b.bank != CONTROLLER_BANK)
        .collect();
    shown.sort_by(|a, b| b.busy_ns.total_cmp(&a.busy_ns));
    let elided = shown.len().saturating_sub(TABLE_CAP);
    shown.truncate(TABLE_CAP);
    shown.sort_by_key(|b| b.bank);
    shown.extend(util.banks.iter().filter(|b| b.bank == CONTROLLER_BANK));
    let mut t = Table::new(&[
        "Bank",
        "Load busy (ns)",
        "Compute busy (ns)",
        "Overlap (ns)",
        "Utilization",
    ]);
    for b in shown {
        let label = if b.bank == CONTROLLER_BANK {
            "ctrl".to_string()
        } else {
            b.bank.to_string()
        };
        t.row_owned(vec![
            label,
            format!("{:.1}", b.load_busy_ns),
            format!("{:.1}", b.compute_busy_ns),
            format!("{:.1}", b.overlap_ns),
            format!("{:.1}%", 100.0 * b.utilization),
        ]);
    }
    println!("{t}");
    if elided > 0 {
        println!("({elided} less-busy banks elided; the trace JSON holds all of them.)");
    }
    println!(
        "Mean utilization {:.1}%, critical bank {}, pipeline overlap {:.1}%.",
        100.0 * util.mean_utilization(),
        util.critical_bank
            .map_or("-".to_string(), |b| b.to_string()),
        100.0 * util.pipeline_overlap_ratio,
    );
    println!(
        "Wrote {} — load in Perfetto (ui.perfetto.dev).",
        out.display()
    );

    if check {
        check_json(&json).map_err(|e| format!("trace JSON failed the sanity scan: {e}"))?;
        println!("JSON sanity scan passed.");
    }
    Ok(())
}
