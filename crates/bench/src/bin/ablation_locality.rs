//! Ablation: how the sparse-mapping advantage depends on workload
//! structure — community locality and vertex ordering.
//!
//! Sweeps the locality fraction of an LJ-class graph and applies the
//! reordering transforms the paper's related work cites (§VI), reporting
//! tile occupancy and the GaaS-X-vs-GraphR ratios at each point. The
//! crossover story: with no locality, tiles are near-singleton and dense
//! mapping is maximally wasteful; fully local graphs densify tiles and
//! shrink the gap; random reordering destroys whatever locality existed.

#![allow(clippy::unwrap_used)]
use gaasx_baselines::{GraphR, GraphRConfig};
use gaasx_core::algorithms::PageRank;
use gaasx_core::{GaasX, GaasXConfig};
use gaasx_graph::generators::{localize, rmat, LocalityConfig, RmatConfig};
use gaasx_graph::partition::GridPartition;
use gaasx_graph::{reorder, CooGraph};
use gaasx_sim::table::{ratio, Table};

fn measure(graph: &CooGraph, units: usize) -> (f64, f64, f64) {
    let grid = GridPartition::new(graph, 16).unwrap();
    let nnz = graph.num_edges() as f64 / grid.num_nonempty_shards().max(1) as f64;
    let mut gx = GaasX::new(GaasXConfig {
        num_banks: units,
        ..GaasXConfig::paper()
    });
    let a = gx
        .run(&PageRank::fixed_iterations(5), graph)
        .unwrap()
        .report;
    let mut gr = GraphR::new(GraphRConfig {
        num_pe: units,
        ..GraphRConfig::paper()
    });
    let b = gr.pagerank(graph, 0.85, 5).unwrap().report;
    (nnz, a.speedup_over(&b), a.energy_savings_over(&b))
}

fn main() {
    let base = rmat(&RmatConfig::new(1 << 15, 300_000).with_seed(0x1f01)).unwrap();
    let units = 16;

    let mut t = Table::new(&["workload variant", "nnz/tile", "speedup", "energy savings"]);
    for p in [0.0, 0.3, 0.6, 0.9] {
        let g = localize(&base, &LocalityConfig::new(p).with_hub_exponent(1.4)).unwrap();
        let (nnz, s, e) = measure(&g, units);
        t.row_owned(vec![
            format!("locality p={p:.1}"),
            format!("{nnz:.2}"),
            ratio(s),
            ratio(e),
        ]);
    }
    let local = localize(&base, &LocalityConfig::new(0.6).with_hub_exponent(1.4)).unwrap();
    for (name, g) in [
        ("p=0.6 randomly reordered", reorder::random(&local, 3)),
        (
            "p=0.6 degree reordered",
            reorder::by_degree_descending(&local),
        ),
    ] {
        let (nnz, s, e) = measure(&g, units);
        t.row_owned(vec![name.into(), format!("{nnz:.2}"), ratio(s), ratio(e)]);
    }
    println!(
        "Ablation — workload locality vs the sparse-mapping advantage\n\
         (LJ-class R-MAT, 300K edges, PageRank ×5, {units} units each)\n\n{t}"
    );
}
