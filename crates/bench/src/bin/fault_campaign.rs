//! Fault-injection campaign: sweeps stuck-cell bit-error rates and
//! write-retry budgets over PageRank, SSSP, and BFS, and checks the three
//! acceptance properties of the fault layer:
//!
//! 1. **BER = 0 is bit-identical** — a zero-rate [`FaultModel`] plus any
//!    recovery policy reproduces the fault-free `RunReport` exactly;
//! 2. **recoverable faults never leak into results** — with write-verify,
//!    bounded retry, and spare-row remapping, every algorithm output
//!    matches the fault-free run exactly, while the report itemizes the
//!    recovery cost (verify reads, retries, remaps, time/energy overhead);
//! 3. **unrecoverable faults degrade gracefully** — a high-BER run under a
//!    detect-only policy surfaces a typed `CoreError::DeviceFault` carrying
//!    the partial report, never a panic.
//!
//! Exits nonzero on any violation, so CI exercises the recovery path on
//! every run. `--smoke` runs a tiny subset for the CI gate;
//! `--edges <N>` overrides the RMAT edge count.
//!
//! Everything is seeded — the campaign replays bit-for-bit.

#![allow(clippy::unwrap_used)]
use gaasx_core::algorithms::{Bfs, PageRank, Sssp};
use gaasx_core::{CoreError, GaasX, GaasXConfig, RecoveryPolicy, RunOutcome, ShardableAlgorithm};
use gaasx_graph::generators::{rmat, RmatConfig};
use gaasx_graph::CooGraph;
use gaasx_sim::table::{count, Table};
use gaasx_sim::RunReport;
use gaasx_xbar::FaultModel;

struct Args {
    smoke: bool,
    edges: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut smoke = false;
    let mut edges = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--edges" => {
                edges = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&e| e > 0)
                        .ok_or_else(|| "--edges requires a positive count".to_string())?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let edges = edges.unwrap_or(if smoke { 200 } else { 600 });
    Ok(Args { smoke, edges })
}

/// The fault model for one sweep point: stuck cells in both arrays at
/// `ber`, plus a 1% transient write-failure rate whenever faults are on.
fn model(ber: f64) -> FaultModel {
    if ber == 0.0 {
        FaultModel::none()
    } else {
        FaultModel {
            seed: 0xFA01,
            cam_stuck_ber: ber,
            mac_stuck_ber: ber,
            write_fail_rate: 0.01,
            ..FaultModel::none()
        }
    }
}

fn policy(retry_budget: u32) -> RecoveryPolicy {
    RecoveryPolicy {
        retry_budget,
        ..RecoveryPolicy::standard()
    }
}

fn run_one<A: ShardableAlgorithm>(
    config: &GaasXConfig,
    algorithm: &A,
    graph: &A::Input,
) -> Result<RunOutcome<A::Output>, CoreError> {
    GaasX::new(config.clone()).run(algorithm, graph)
}

/// Sweeps one algorithm over BER × retry budget, appending one table row
/// per point. Returns an error on any acceptance violation.
fn sweep<A>(
    table: &mut Table,
    name: &str,
    algorithm: &A,
    graph: &A::Input,
    bers: &[f64],
    retries: &[u32],
) -> Result<(), String>
where
    A: ShardableAlgorithm,
    A::Output: PartialEq,
{
    let clean = run_one(&GaasXConfig::small(), algorithm, graph).map_err(|e| e.to_string())?;
    for &ber in bers {
        for &retry in retries {
            let config = GaasXConfig {
                fault: model(ber),
                recovery: policy(retry),
                ..GaasXConfig::small()
            };
            let faulty = run_one(&config, algorithm, graph)
                .map_err(|e| format!("{name} ber={ber:.0e} retry={retry}: {e}"))?;
            if ber == 0.0 {
                // Property 1: the fault layer is bit-free when off.
                if faulty.report != clean.report {
                    return Err(format!("{name}: BER=0 report diverged from fault-free run"));
                }
            }
            // Property 2: recovery never leaks into results.
            if faulty.result != clean.result {
                return Err(format!(
                    "{name} ber={ber:.0e} retry={retry}: output diverged from fault-free run"
                ));
            }
            let f = &faulty.report.faults;
            let time_ovh = faulty.report.elapsed_ns / clean.report.elapsed_ns - 1.0;
            let energy_ovh = faulty.report.energy.total_nj() / clean.report.energy.total_nj() - 1.0;
            table.row_owned(vec![
                name.into(),
                if ber == 0.0 {
                    "0".into()
                } else {
                    format!("{ber:.0e}")
                },
                retry.to_string(),
                count(f.verify_reads),
                count(f.faults_detected),
                count(f.write_retries),
                count(f.row_remaps),
                format!("{:.2}%", 100.0 * time_ovh),
                format!("{:.2}%", 100.0 * energy_ovh),
                if ber == 0.0 { "bit-identical" } else { "exact" }.into(),
            ]);
        }
    }
    Ok(())
}

/// Property 3: a BER far beyond the spare pool under a detect-only policy
/// must surface as a typed `DeviceFault` with a partial report attached.
fn check_graceful_degradation(graph: &CooGraph) -> Result<RunReport, String> {
    let config = GaasXConfig {
        fault: FaultModel {
            seed: 0xDEAD,
            cam_stuck_ber: 1e-2,
            ..FaultModel::none()
        },
        recovery: RecoveryPolicy::detect_only(),
        ..GaasXConfig::small()
    };
    match run_one(&config, &PageRank::fixed_iterations(3), graph) {
        Err(CoreError::DeviceFault {
            report: Some(report),
            detail,
        }) => {
            if report.ops.verify_reads == 0 {
                return Err("partial report carries no verify reads".into());
            }
            println!("detect-only @ BER=1e-2: DeviceFault as expected ({detail})");
            Ok(*report)
        }
        Err(other) => Err(format!(
            "want DeviceFault with partial report, got: {other}"
        )),
        Ok(_) => Err("BER=1e-2 under detect-only unexpectedly succeeded".into()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    let graph = rmat(&RmatConfig::new(64, args.edges).with_seed(13))?;
    let src = gaasx_bench::traversal_source(&graph);
    let (bers, retries): (&[f64], &[u32]) = if args.smoke {
        (&[0.0, 1e-4], &[3])
    } else {
        (&[0.0, 1e-5, 1e-4, 3e-4], &[1, 3])
    };
    println!(
        "Fault campaign — RMAT |V|={} |E|={}, stuck-cell BER sweep × retry budget, \
         write-fail 1%, 16 spare rows{}\n",
        count(graph.num_vertices() as u64),
        count(graph.num_edges() as u64),
        if args.smoke { " (smoke subset)" } else { "" },
    );

    let mut table = Table::new(&[
        "algorithm",
        "stuck BER",
        "retry",
        "verify reads",
        "detected",
        "retries",
        "remaps",
        "time ovh",
        "energy ovh",
        "results",
    ]);
    sweep(
        &mut table,
        "pagerank",
        &PageRank::fixed_iterations(3),
        &graph,
        bers,
        retries,
    )?;
    if !args.smoke {
        sweep(
            &mut table,
            "sssp",
            &Sssp::from_source(src),
            &graph,
            bers,
            retries,
        )?;
        sweep(
            &mut table,
            "bfs",
            &Bfs::from_source(src),
            &graph,
            bers,
            retries,
        )?;
    }
    println!("{table}");

    let partial = check_graceful_degradation(&graph)?;
    println!(
        "partial report: {} verify reads, {} faults detected before abort\n",
        count(partial.ops.verify_reads),
        count(partial.faults.faults_detected),
    );
    println!(
        "All sweep points reproduced the fault-free results; BER=0 was bit-identical; \
         the unrecoverable case degraded gracefully."
    );
    Ok(())
}
