//! Regenerates Fig 13: CDF of rows accumulated per MAC operation.

#![allow(clippy::unwrap_used)]
use gaasx_bench::experiments::{fig13, run_matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let matrix = run_matrix(gaasx_bench::cap_edges(), gaasx_bench::pr_iterations())?;
    println!("{}", fig13(&matrix));
    Ok(())
}
