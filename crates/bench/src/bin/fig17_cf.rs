//! Regenerates Fig 17: collaborative filtering comparison.

#![allow(clippy::unwrap_used)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CF simulates per-rating feature MACs; cap ratings below the graph cap.
    let cap = (gaasx_bench::cap_edges() / 6).max(2_000);
    println!("{}", gaasx_bench::experiments::fig17(cap, 32, 3)?);
    Ok(())
}
