//! Regenerates Table I: GaaS-X architecture parameters.

#![allow(clippy::unwrap_used)]
fn main() {
    println!("{}", gaasx_bench::experiments::table1());
}
