//! Regenerates Table I: GaaS-X architecture parameters.

fn main() {
    println!("{}", gaasx_bench::experiments::table1());
}
