//! Offline replay of JSONL event traces written by
//! [`gaasx_sim::JsonlSink`].
//!
//! The trace format is the stable single-line JSON emitted by
//! `gaasx_sim::obs::span_to_json` (plus counter/gauge snapshot lines), so
//! a tiny field scanner is enough — no JSON library involved. Unknown
//! lines and unknown fields are skipped, which keeps the replayer usable
//! on traces from newer writers.

use gaasx_sim::table::Table;
use gaasx_sim::Phase;

/// One parsed span line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Execution phase.
    pub phase: Phase,
    /// Span start on the engine's modeled (or measured) time axis, ns.
    pub start_ns: f64,
    /// Span duration, ns.
    pub dur_ns: f64,
    /// Hardware unit id for dispatch spans.
    pub bank: Option<u32>,
}

/// One parsed bank-occupancy timeline interval of a trace (written by
/// interval-observing sinks such as [`gaasx_sim::TimelineSink`] or
/// [`gaasx_sim::JsonlSink`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInterval {
    /// Bank id, or [`gaasx_sim::CONTROLLER_BANK`] for controller work.
    pub bank: u32,
    /// Lane within the bank (0 = load, 1 = compute).
    pub lane: u32,
    /// Execution phase.
    pub phase: Phase,
    /// Interval start on the modeled time axis, ns.
    pub start_ns: f64,
    /// Interval duration, ns.
    pub dur_ns: f64,
    /// Block id for per-block work; `None` for controller extras.
    pub block: Option<u32>,
}

/// Everything recovered from one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// All span events, in file order.
    pub spans: Vec<TraceSpan>,
    /// All timeline intervals, in file order.
    pub intervals: Vec<TraceInterval>,
    /// Final counter snapshot (`name`, value).
    pub counters: Vec<(String, u64)>,
    /// Final gauge snapshot (`name`, value).
    pub gauges: Vec<(String, f64)>,
    /// Lines that did not parse as any known event type.
    pub skipped: usize,
}

/// Extracts the raw text of `"key":<value>` from a JSON object line.
///
/// Values are terminated by `,`, `}`, or end of line; string values keep
/// their quotes stripped. Returns `None` when the key is absent. Keys
/// inside nested objects (the `attrs` map) are not matched because every
/// top-level key this parser asks for appears before `attrs` in the
/// writer's fixed field order.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn num_field(line: &str, key: &str) -> Option<f64> {
    field(line, key)?.parse().ok()
}

/// Parses one trace line; `None` for blank or unrecognized lines.
pub fn parse_line(line: &str) -> Option<ParsedLine> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    match field(line, "type")? {
        "span" => {
            let phase = Phase::from_name(field(line, "phase")?)?;
            Some(ParsedLine::Span(TraceSpan {
                phase,
                start_ns: num_field(line, "start_ns")?,
                dur_ns: num_field(line, "dur_ns")?,
                bank: num_field(line, "bank").map(|b| b as u32),
            }))
        }
        "interval" => {
            let phase = Phase::from_name(field(line, "phase")?)?;
            Some(ParsedLine::Interval(TraceInterval {
                bank: field(line, "bank")?.parse().ok()?,
                lane: field(line, "lane")?.parse().ok()?,
                phase,
                start_ns: num_field(line, "start_ns")?,
                dur_ns: num_field(line, "dur_ns")?,
                block: field(line, "block").and_then(|b| b.parse().ok()),
            }))
        }
        "counter" => Some(ParsedLine::Counter(
            field(line, "name")?.to_string(),
            field(line, "value")?.parse().ok()?,
        )),
        "gauge" => Some(ParsedLine::Gauge(
            field(line, "name")?.to_string(),
            num_field(line, "value")?,
        )),
        _ => None,
    }
}

/// One successfully parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// A phase span.
    Span(TraceSpan),
    /// A bank-occupancy timeline interval.
    Interval(TraceInterval),
    /// A counter snapshot entry.
    Counter(String, u64),
    /// A gauge snapshot entry.
    Gauge(String, f64),
}

impl TraceSummary {
    /// Parses a whole JSONL trace.
    pub fn parse(text: &str) -> TraceSummary {
        let mut out = TraceSummary::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(line) {
                Some(ParsedLine::Span(s)) => out.spans.push(s),
                Some(ParsedLine::Interval(iv)) => out.intervals.push(iv),
                Some(ParsedLine::Counter(name, v)) => out.counters.push((name, v)),
                Some(ParsedLine::Gauge(name, v)) => out.gauges.push((name, v)),
                None => out.skipped += 1,
            }
        }
        out
    }

    /// Per-phase `(phase, busy_ns, count)` rollup over all spans, in
    /// [`Phase::ALL`] order, omitting phases with no spans.
    pub fn phase_rollup(&self) -> Vec<(Phase, f64, u64)> {
        let mut busy = [0.0f64; 7];
        let mut counts = [0u64; 7];
        for s in &self.spans {
            busy[s.phase.index()] += s.dur_ns;
            counts[s.phase.index()] += 1;
        }
        Phase::ALL
            .iter()
            .filter(|&&p| counts[p.index()] > 0)
            .map(|&p| (p, busy[p.index()], counts[p.index()]))
            .collect()
    }

    /// Per-bank `(bank, busy_ns, spans, utilization)` over banked spans,
    /// sorted by bank id. Utilization is busy time over the banked window
    /// (first banked start to last banked end).
    pub fn bank_rollup(&self) -> Vec<(u32, f64, u64, f64)> {
        let banked: Vec<&TraceSpan> = self.spans.iter().filter(|s| s.bank.is_some()).collect();
        let Some(window) = banked_window(&banked) else {
            return Vec::new();
        };
        let mut per: Vec<(u32, f64, u64)> = Vec::new();
        for s in &banked {
            let bank = s.bank.unwrap_or(0);
            match per.iter_mut().find(|(b, _, _)| *b == bank) {
                Some((_, busy, n)) => {
                    *busy += s.dur_ns;
                    *n += 1;
                }
                None => per.push((bank, s.dur_ns, 1)),
            }
        }
        per.sort_by_key(|&(b, _, _)| b);
        per.into_iter()
            .map(|(b, busy, n)| {
                let util = if window > 0.0 { busy / window } else { 0.0 };
                (b, busy, n, util)
            })
            .collect()
    }

    /// Per-bank `(bank, load_busy_ns, compute_busy_ns, intervals)` over all
    /// timeline intervals, sorted by bank id with the controller pseudo-bank
    /// last. Lane 0 counts as load occupancy, every other lane as compute.
    pub fn interval_rollup(&self) -> Vec<(u32, f64, f64, u64)> {
        let mut per: Vec<(u32, f64, f64, u64)> = Vec::new();
        for iv in &self.intervals {
            let idx = per
                .iter()
                .position(|(b, ..)| *b == iv.bank)
                .unwrap_or_else(|| {
                    per.push((iv.bank, 0.0, 0.0, 0));
                    per.len() - 1
                });
            let slot = &mut per[idx];
            if iv.lane == 0 {
                slot.1 += iv.dur_ns;
            } else {
                slot.2 += iv.dur_ns;
            }
            slot.3 += 1;
        }
        per.sort_by_key(|&(b, ..)| b);
        per
    }

    /// Renders the phase table, the bank utilization table, and the final
    /// counter snapshot as one report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let phases = self.phase_rollup();
        let total_busy: f64 = phases.iter().map(|&(_, b, _)| b).sum();
        let mut pt = Table::new(&["Phase", "Busy (ns)", "Spans", "Share"]);
        for &(phase, busy, count) in &phases {
            let share = if total_busy > 0.0 {
                busy / total_busy
            } else {
                0.0
            };
            pt.row_owned(vec![
                phase.name().to_string(),
                format!("{busy:.1}"),
                count.to_string(),
                format!("{:.1}%", 100.0 * share),
            ]);
        }
        out.push_str(&format!("Per-phase busy time\n\n{pt}\n"));

        let banks = self.bank_rollup();
        if banks.is_empty() {
            out.push_str("No banked (dispatch) spans in trace.\n");
        } else {
            let mut bt = Table::new(&["Bank", "Busy (ns)", "Spans", "Utilization"]);
            for &(bank, busy, n, util) in &banks {
                bt.row_owned(vec![
                    bank.to_string(),
                    format!("{busy:.1}"),
                    n.to_string(),
                    format!("{:.1}%", 100.0 * util),
                ]);
            }
            out.push_str(&format!("Per-bank utilization\n\n{bt}\n"));
        }

        let lanes = self.interval_rollup();
        if !lanes.is_empty() {
            let mut lt = Table::new(&["Bank", "Load busy (ns)", "Compute busy (ns)", "Intervals"]);
            for &(bank, load, compute, n) in &lanes {
                let label = if bank == u32::MAX {
                    "ctrl".to_string()
                } else {
                    bank.to_string()
                };
                lt.row_owned(vec![
                    label,
                    format!("{load:.1}"),
                    format!("{compute:.1}"),
                    n.to_string(),
                ]);
            }
            out.push_str(&format!("Per-bank timeline occupancy\n\n{lt}\n"));
        }

        if !self.counters.is_empty() || !self.gauges.is_empty() {
            let mut mt = Table::new(&["Metric", "Value"]);
            for (name, v) in &self.counters {
                mt.row_owned(vec![name.clone(), v.to_string()]);
            }
            for (name, v) in &self.gauges {
                mt.row_owned(vec![name.clone(), format!("{v:.1}")]);
            }
            out.push_str(&format!("Final metric snapshot\n\n{mt}\n"));
        }
        if self.skipped > 0 {
            out.push_str(&format!("({} unrecognized lines skipped)\n", self.skipped));
        }
        out
    }
}

fn banked_window(banked: &[&TraceSpan]) -> Option<f64> {
    let first = banked.iter().map(|s| s.start_ns).min_by(f64::total_cmp)?;
    let last = banked
        .iter()
        .map(|s| s.start_ns + s.dur_ns)
        .max_by(f64::total_cmp)?;
    Some(last - first)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
{\"type\":\"span\",\"seq\":0,\"phase\":\"load_block\",\"start_ns\":0.000,\"dur_ns\":4.000,\"attrs\":{\"edges\":3}}\n\
{\"type\":\"span\",\"seq\":1,\"phase\":\"cam_search\",\"start_ns\":4.000,\"dur_ns\":1.000}\n\
{\"type\":\"span\",\"seq\":2,\"phase\":\"dispatch\",\"start_ns\":0.000,\"dur_ns\":6.000,\"bank\":0}\n\
{\"type\":\"span\",\"seq\":3,\"phase\":\"dispatch\",\"start_ns\":2.000,\"dur_ns\":6.000,\"bank\":1}\n\
{\"type\":\"counter\",\"name\":\"mac_ops\",\"value\":12}\n\
{\"type\":\"gauge\",\"name\":\"elapsed_ns\",\"value\":8.000}\n\
not json at all\n";

    #[test]
    fn parses_spans_counters_and_gauges() {
        let t = TraceSummary::parse(SAMPLE);
        assert_eq!(t.spans.len(), 4);
        assert_eq!(t.skipped, 1);
        assert_eq!(t.spans[0].phase, Phase::LoadBlock);
        assert_eq!(t.spans[0].dur_ns, 4.0);
        assert_eq!(t.spans[2].bank, Some(0));
        assert_eq!(t.counters, vec![("mac_ops".to_string(), 12)]);
        assert_eq!(t.gauges, vec![("elapsed_ns".to_string(), 8.0)]);
    }

    #[test]
    fn phase_rollup_orders_and_omits_empty() {
        let t = TraceSummary::parse(SAMPLE);
        let phases = t.phase_rollup();
        assert_eq!(
            phases,
            vec![
                (Phase::LoadBlock, 4.0, 1),
                (Phase::CamSearch, 1.0, 1),
                (Phase::Dispatch, 12.0, 2),
            ]
        );
    }

    #[test]
    fn bank_utilization_uses_the_banked_window() {
        let t = TraceSummary::parse(SAMPLE);
        let banks = t.bank_rollup();
        // Window is 0..8; each bank is busy 6 of those 8 ns.
        assert_eq!(banks.len(), 2);
        assert_eq!(banks[0].0, 0);
        assert!((banks[0].3 - 0.75).abs() < 1e-12);
        assert!((banks[1].3 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_includes_all_sections() {
        let r = TraceSummary::parse(SAMPLE).render();
        assert!(r.contains("Per-phase busy time"));
        assert!(r.contains("Per-bank utilization"));
        assert!(r.contains("mac_ops"));
        assert!(r.contains("unrecognized"));
    }

    const INTERVAL_SAMPLE: &str = "\
{\"type\":\"interval\",\"bank\":0,\"lane\":0,\"phase\":\"load_block\",\"start_ns\":0.000,\"dur_ns\":4.000,\"block\":0}\n\
{\"type\":\"interval\",\"bank\":0,\"lane\":1,\"phase\":\"mac_gather\",\"start_ns\":4.000,\"dur_ns\":2.500,\"block\":0}\n\
{\"type\":\"interval\",\"bank\":4294967295,\"lane\":1,\"phase\":\"sfu\",\"start_ns\":0.000,\"dur_ns\":1.000}\n";

    #[test]
    fn parses_timeline_intervals() {
        let t = TraceSummary::parse(INTERVAL_SAMPLE);
        assert_eq!(t.skipped, 0);
        assert_eq!(t.intervals.len(), 3);
        assert_eq!(t.intervals[0].phase, Phase::LoadBlock);
        assert_eq!(t.intervals[0].block, Some(0));
        assert_eq!(t.intervals[2].bank, u32::MAX);
        assert_eq!(t.intervals[2].block, None);
        let rollup = t.interval_rollup();
        assert_eq!(rollup.len(), 2);
        assert_eq!(rollup[0], (0, 4.0, 2.5, 2));
        assert_eq!(rollup[1], (u32::MAX, 0.0, 1.0, 1));
        assert!(t.render().contains("Per-bank timeline occupancy"));
        assert!(t.render().contains("ctrl"));
    }

    #[test]
    fn field_extraction_edges() {
        assert_eq!(field("{\"a\":1,\"b\":\"x\"}", "b"), Some("x"));
        assert_eq!(field("{\"a\":1}", "a"), Some("1"));
        assert_eq!(field("{\"a\":1}", "missing"), None);
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("{\"type\":\"mystery\"}"), None);
    }
}
