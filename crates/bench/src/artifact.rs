//! Serialization contract for the `BENCH_0x.json` search-mode artifacts.
//!
//! The perf-regression gate diffs artifacts across commits, so their
//! byte layout is a compatibility surface: key order, float widths
//! (`{:.6}` wall clocks, `{:.3}` ratios), and one-row-per-line framing
//! are all load-bearing for the line-oriented parser below. [`render`]
//! and [`parse`] are exact inverses over well-formed artifacts — the
//! `artifact_snapshot` integration test round-trips the committed
//! `results/BENCH_07.json` through both and asserts byte identity.

/// One `(algorithm, bank, jobs, fault)` row of a search-mode artifact,
/// carrying the already-derived ratios exactly as serialized.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchModeRow {
    /// Algorithm name (`pagerank`, `bfs`, ...).
    pub algorithm: String,
    /// Bank geometry label (`paper` or `deep`).
    pub bank: String,
    /// Shard-level parallelism of the run.
    pub jobs: usize,
    /// Whether the fault-injection campaign was active.
    pub fault: bool,
    /// Linear-search wall clock, seconds (`{:.6}` in the artifact).
    pub linear_wall_s: f64,
    /// Indexed-search wall clock, seconds (`{:.6}` in the artifact).
    pub indexed_wall_s: f64,
    /// Auto-mode wall clock, seconds (`{:.6}` in the artifact).
    pub auto_wall_s: f64,
    /// Linear/indexed speedup ratio (`{:.3}` in the artifact).
    pub speedup: f64,
    /// Auto vs best-fixed-mode ratio (`{:.3}` in the artifact).
    pub auto_vs_best: f64,
    /// Linear-search wall clock under the *scalar* kernel, seconds
    /// (`{:.6}`). `None` in artifacts predating the packed kernels
    /// (BENCH_07 and earlier); both packed fields are present together.
    pub scalar_linear_wall_s: Option<f64>,
    /// Packed-over-scalar speedup on the Linear scan (`{:.3}`): the
    /// realized word-parallel kernel win this row, `None` pre-BENCH_08.
    pub packed_vs_scalar: Option<f64>,
}

/// A parsed search-mode artifact: run metadata plus its rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchModeArtifact {
    /// Edge cap the benchmark graphs were built with.
    pub edges: u64,
    /// PageRank iteration count of the run.
    pub pr_iterations: u32,
    /// One row per `(algorithm, bank, jobs, fault)` matrix cell.
    pub rows: Vec<SearchModeRow>,
}

/// Extracts the raw text of `"key": <value>` from one JSON line,
/// tolerating optional whitespace after the colon; string values lose
/// their quotes.
pub fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Renders the artifact in the committed layout. Floats are re-rounded
/// through the same format strings the original writer used, so feeding
/// back [`parse`]d values reproduces the input bytes exactly.
pub fn render(artifact: &SearchModeArtifact) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"search_modes\",\n");
    s.push_str(&format!("  \"edges\": {},\n", artifact.edges));
    s.push_str(&format!(
        "  \"pr_iterations\": {},\n",
        artifact.pr_iterations
    ));
    s.push_str("  \"identity\": \"every row bit-identical (RunReport + output) across modes\",\n");
    s.push_str("  \"runs\": [\n");
    for (i, r) in artifact.rows.iter().enumerate() {
        // The packed-kernel columns only render when measured, so
        // pre-BENCH_08 artifacts keep round-tripping byte-identically.
        let packed = match (r.scalar_linear_wall_s, r.packed_vs_scalar) {
            (Some(wall), Some(ratio)) => {
                format!(", \"scalar_linear_wall_s\": {wall:.6}, \"packed_vs_scalar\": {ratio:.3}")
            }
            _ => String::new(),
        };
        s.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"bank\": \"{}\", \"jobs\": {}, \"fault\": {}, \
             \"linear_wall_s\": {:.6}, \"indexed_wall_s\": {:.6}, \"auto_wall_s\": {:.6}, \
             \"speedup\": {:.3}, \"auto_vs_best\": {:.3}{}}}{}\n",
            r.algorithm,
            r.bank,
            r.jobs,
            r.fault,
            r.linear_wall_s,
            r.indexed_wall_s,
            r.auto_wall_s,
            r.speedup,
            r.auto_vs_best,
            packed,
            if i + 1 == artifact.rows.len() {
                ""
            } else {
                ","
            },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parses a search-mode artifact produced by [`render`] (or the older
/// writers sharing the layout). Lines without an `algorithm` field
/// (header, brackets) carry the metadata or are skipped.
pub fn parse(text: &str) -> Result<SearchModeArtifact, String> {
    let mut edges = None;
    let mut pr_iterations = None;
    let mut rows = Vec::new();
    for line in text.lines() {
        if field(line, "algorithm").is_some() {
            rows.push(parse_row(line)?);
            continue;
        }
        if let Some(v) = field(line, "edges") {
            edges = Some(v.parse().map_err(|e| format!("edges: {e}"))?);
        }
        if let Some(v) = field(line, "pr_iterations") {
            pr_iterations = Some(v.parse().map_err(|e| format!("pr_iterations: {e}"))?);
        }
    }
    Ok(SearchModeArtifact {
        edges: edges.ok_or("artifact has no `edges` field")?,
        pr_iterations: pr_iterations.ok_or("artifact has no `pr_iterations` field")?,
        rows,
    })
}

fn parse_row(line: &str) -> Result<SearchModeRow, String> {
    fn req<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
        field(line, key).ok_or_else(|| format!("row is missing `{key}`: {line}"))
    }
    fn num<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        req(line, key)?
            .parse()
            .map_err(|e| format!("row field `{key}`: {e}"))
    }
    Ok(SearchModeRow {
        algorithm: req(line, "algorithm")?.to_string(),
        bank: req(line, "bank")?.to_string(),
        jobs: num(line, "jobs")?,
        fault: num(line, "fault")?,
        linear_wall_s: num(line, "linear_wall_s")?,
        indexed_wall_s: num(line, "indexed_wall_s")?,
        auto_wall_s: num(line, "auto_wall_s")?,
        speedup: num(line, "speedup")?,
        auto_vs_best: num(line, "auto_vs_best")?,
        scalar_linear_wall_s: opt(line, "scalar_linear_wall_s")?,
        packed_vs_scalar: opt(line, "packed_vs_scalar")?,
    })
}

/// Parses an optional numeric field: absent keys yield `Ok(None)`,
/// malformed values still fail loudly.
fn opt(line: &str, key: &str) -> Result<Option<f64>, String> {
    field(line, key)
        .map(|v| v.parse().map_err(|e| format!("row field `{key}`: {e}")))
        .transpose()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SearchModeArtifact {
        SearchModeArtifact {
            edges: 60000,
            pr_iterations: 5,
            rows: vec![
                SearchModeRow {
                    algorithm: "pagerank".into(),
                    bank: "paper".into(),
                    jobs: 1,
                    fault: false,
                    linear_wall_s: 0.03651,
                    indexed_wall_s: 0.034021,
                    auto_wall_s: 0.032632,
                    speedup: 1.073,
                    auto_vs_best: 1.043,
                    scalar_linear_wall_s: None,
                    packed_vs_scalar: None,
                },
                SearchModeRow {
                    algorithm: "bfs".into(),
                    bank: "deep".into(),
                    jobs: 4,
                    fault: true,
                    linear_wall_s: 0.1,
                    indexed_wall_s: 0.05,
                    auto_wall_s: 0.05,
                    speedup: 2.0,
                    auto_vs_best: 1.0,
                    scalar_linear_wall_s: Some(0.21),
                    packed_vs_scalar: Some(2.1),
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips_values() {
        let a = sample();
        assert_eq!(parse(&render(&a)).unwrap(), a);
    }

    #[test]
    fn parse_render_round_trips_bytes() {
        let text = render(&sample());
        assert_eq!(render(&parse(&text).unwrap()), text);
    }

    #[test]
    fn field_handles_strings_numbers_and_bools() {
        let line = r#"    {"algorithm": "bfs", "jobs": 4, "fault": false, "speedup": 2.000},"#;
        assert_eq!(field(line, "algorithm"), Some("bfs"));
        assert_eq!(field(line, "jobs"), Some("4"));
        assert_eq!(field(line, "fault"), Some("false"));
        assert_eq!(field(line, "speedup"), Some("2.000"));
        assert_eq!(field(line, "missing"), None);
    }

    #[test]
    fn packed_columns_are_optional_and_round_trip() {
        let a = sample();
        let text = render(&a);
        // Row 0 (no packed columns) renders the pre-BENCH_08 layout.
        assert!(!text.lines().nth(6).unwrap().contains("packed_vs_scalar"));
        assert!(text
            .lines()
            .nth(7)
            .unwrap()
            .contains("\"packed_vs_scalar\": 2.100"));
        assert_eq!(parse(&text).unwrap(), a);
    }

    #[test]
    fn parse_rejects_incomplete_rows() {
        let text = "{\n  \"edges\": 1,\n  \"pr_iterations\": 1,\n  {\"algorithm\": \"bfs\"}\n}\n";
        assert!(parse(text).unwrap_err().contains("missing"));
    }
}
