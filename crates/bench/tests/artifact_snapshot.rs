//! Snapshot gate on the BENCH JSON serialization contract.
//!
//! The typed `Nanos`/`Picojoules` migration must not move a single byte
//! of the benchmark artifacts: the perf-regression gate diffs them
//! across commits and the line-oriented parser depends on their exact
//! framing. This test round-trips the *committed* `results/BENCH_07.json`
//! through [`gaasx_bench::artifact::parse`] → [`gaasx_bench::artifact::render`]
//! and asserts byte identity, so any drift in key order, float widths,
//! or row framing fails loudly against the real artifact — not just a
//! synthetic sample.

#![allow(clippy::unwrap_used)]

use gaasx_bench::artifact;

fn workspace_file(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

#[test]
fn committed_bench_artifacts_round_trip_byte_identically() {
    // BENCH_07 pins the pre-packed layout (no kernel columns); BENCH_08
    // pins the extended one — the optional columns must not disturb
    // either direction.
    for rel in ["results/BENCH_07.json", "results/BENCH_08.json"] {
        let path = workspace_file(rel);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let parsed = artifact::parse(&text).expect("committed artifact parses");
        assert!(
            !parsed.rows.is_empty(),
            "{rel} has no rows — the snapshot gate would be vacuous"
        );
        assert_eq!(
            artifact::render(&parsed),
            text,
            "re-serializing {rel} changed its bytes; \
             the BENCH serialization contract drifted"
        );
    }
}

#[test]
fn bench_08_rows_carry_the_packed_columns() {
    let path = workspace_file("results/BENCH_08.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let parsed = artifact::parse(&text).expect("committed artifact parses");
    for r in &parsed.rows {
        let wall = r
            .scalar_linear_wall_s
            .expect("BENCH_08 rows measure the scalar kernel");
        let ratio = r.packed_vs_scalar.expect("BENCH_08 rows carry the ratio");
        assert!(wall > 0.0 && ratio > 0.0, "degenerate packed row {r:?}");
        if r.bank == "deep" {
            assert!(
                ratio >= 1.0,
                "deep-bank packed row below scalar parity: {r:?}"
            );
        }
    }
}

#[test]
fn committed_bench_artifact_matrix_is_complete() {
    let path = workspace_file("results/BENCH_07.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let parsed = artifact::parse(&text).expect("committed artifact parses");
    for bank in ["paper", "deep"] {
        assert!(
            parsed
                .rows
                .iter()
                .any(|r| r.bank == bank && r.algorithm == "pagerank"),
            "missing pagerank row for bank `{bank}`"
        );
    }
    for r in &parsed.rows {
        assert!(
            r.linear_wall_s > 0.0 && r.indexed_wall_s > 0.0 && r.auto_wall_s > 0.0,
            "non-positive wall clock in row {r:?}"
        );
    }
}
